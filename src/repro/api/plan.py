"""The frozen, validated campaign plan.

``run_campaign`` grew sixteen loose keyword arguments across PRs 1 and 2;
:class:`CampaignPlan` absorbs them into one immutable value that is
validated *once*, up front — bad shards, impossible opt levels or
process/cache combinations fail before any simulation starts, with
did-you-mean quality errors instead of a half-finished campaign.

Plans are plain data: hashable-free (tests are unhashable lists) but
frozen, shareable between sessions, and splittable into deterministic
shards (:meth:`CampaignPlan.split`) whose streams merge back into the
single-run Table IV.

Two axes arrived with the toolchain redesign:

* ``tests`` accepts a streaming :class:`~repro.tools.sources.TestSource`
  in place of an eager list — a 10k-test diy source costs nothing until
  the engine resolves it;
* ``mode="differential"`` runs compiler-vs-compiler cells (paper §IV-D)
  over ``profiles`` — e.g. ``CampaignPlan(mode="differential",
  profiles=("llvm-O1-AArch64", "llvm-O3-AArch64"))`` — through the same
  engine, events, store and CLI as translation-validation campaigns.

``mode="hunt"`` (the §V mutation-testing loop) treats ``tests`` as the
*seeds* of a feedback-driven hunt: rounds of order/fence-weakening
mutants (``mutations=``, ``mutation_rounds=``, ``mutation_limit=``) are
scheduled positives-first and deduplicated by content digest, and with
``reduce=True`` every positive is delta-debugged to a 1-minimal
reproducer — see :mod:`repro.hunt`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Union

from ..core.errors import ReproError
from ..lang.ast import CLitmus
from ..tools.diy import DiyConfig
from ..tools.sources import TestSource, as_source

#: Table IV's row order — the default campaign sweep.
DEFAULT_ARCHES = ("aarch64", "armv7", "riscv64", "ppc64", "x86_64", "mips64")

#: the campaign modes the engine understands.
MODES = ("tv", "differential", "hunt")


class PlanError(ReproError, ValueError):
    """A campaign plan failed validation.

    Subclasses :class:`ValueError` so callers of the legacy
    ``run_campaign`` shim keep catching what they always caught.
    """


@dataclass(frozen=True)
class CampaignPlan:
    """Everything one campaign run needs, validated at construction."""

    #: pre-generated tests (or a streaming :class:`TestSource`); when
    #: ``None``, ``config`` drives generation
    tests: Union[Tuple[CLitmus, ...], TestSource, None] = None
    #: diy generation config (defaults to ``DiyConfig()`` when both are None)
    config: Optional[DiyConfig] = None
    arches: Tuple[str, ...] = DEFAULT_ARCHES
    opts: Tuple[str, ...] = ("-O1", "-O2", "-O3")
    compilers: Tuple[str, ...] = ("llvm", "gcc")
    source_model: str = "rc11"
    budget_candidates: int = 400_000
    augment: bool = True
    #: worker threads (in-process caches shared)
    workers: int = 1
    #: worker processes (> 0 overrides ``workers``)
    processes: int = 0
    #: run only the k-th of n deterministic cell partitions
    shard: Optional[Tuple[int, int]] = None
    #: replay verdicts already in the session's store
    resume: bool = False
    #: "tv" (source vs compiled, the default) or "differential"
    #: (compiler vs compiler over ``profiles``, paper §IV-D)
    mode: str = "tv"
    #: differential mode only: the profile names/specs under comparison —
    #: every unordered pair becomes one cell per test.  In differential
    #: mode ``source_model`` is the undefined-behaviour oracle.
    profiles: Optional[Tuple[str, ...]] = None
    #: hunt mode only: the mutation-operator names to hunt with (resolved
    #: against the session's mutation registry; ``None`` = the default
    #: order-weakening set of :data:`repro.tools.mutate.DEFAULT_OPERATORS`)
    mutations: Optional[Tuple[str, ...]] = None
    #: hunt mode: mutation rounds beyond the seed round (round 0)
    mutation_rounds: int = 2
    #: hunt mode: cap on new mutants scheduled per round
    mutation_limit: int = 64
    #: hunt mode: delta-debug every positive down to a 1-minimal
    #: reproducer (ignored outside hunt mode)
    reduce: bool = True
    #: run :mod:`repro.analysis.litmuslint` over every materialised test
    #: before dispatch; error-severity findings abort with a
    #: :class:`PlanError` carrying the diagnostics (fail fast, before a
    #: single cell is scheduled)
    lint: bool = True

    def __post_init__(self) -> None:
        # coerce the sequence fields so list-passing callers still freeze
        # (a streaming TestSource passes through *unmaterialised*)
        for name in ("tests", "arches", "opts", "compilers", "profiles",
                     "mutations"):
            value = getattr(self, name)
            if (
                value is not None
                and not isinstance(value, (tuple, TestSource))
            ):
                object.__setattr__(self, name, tuple(value))
        if self.shard is not None and not isinstance(self.shard, tuple):
            object.__setattr__(self, "shard", tuple(self.shard))

        if self.workers < 1:
            raise PlanError(f"workers must be >= 1, got {self.workers}")
        if self.processes < 0:
            raise PlanError(f"processes must be >= 0, got {self.processes}")
        if self.budget_candidates < 1:
            raise PlanError(
                f"budget_candidates must be >= 1, got {self.budget_candidates}"
            )
        if self.mode not in MODES:
            raise PlanError(
                f"unknown campaign mode {self.mode!r}; expected one of {MODES}"
            )
        if self.mode == "differential":
            if self.profiles is None or len(self.profiles) < 2:
                raise PlanError(
                    "differential mode needs profiles=(a, b, ...) — at "
                    "least two compiler profiles to compare"
                )
            if len(set(self.profiles)) != len(self.profiles):
                raise PlanError(
                    f"differential profiles contain duplicates: "
                    f"{self.profiles}"
                )
        elif self.profiles is not None:
            raise PlanError(
                'profiles= is only meaningful with mode="differential"'
            )
        if self.mode == "hunt":
            if self.mutation_rounds < 0:
                raise PlanError(
                    f"mutation_rounds must be >= 0, got {self.mutation_rounds}"
                )
            if self.mutation_limit < 1:
                raise PlanError(
                    f"mutation_limit must be >= 1, got {self.mutation_limit}"
                )
            if self.shard is not None:
                # hunt work lists grow from per-round feedback; shards of
                # a dynamic list would each see different feedback and
                # diverge — shard the *seeds* (TestSource.shard) instead
                raise PlanError(
                    "hunt campaigns schedule work dynamically and cannot "
                    "be cell-sharded; shard the seed source instead"
                )
        elif self.mutations is not None:
            raise PlanError('mutations= is only meaningful with mode="hunt"')
        # NOTE: arch/compiler/opt *membership* is deliberately not
        # validated here — at campaign scale an unbuildable profile is an
        # error *cell*, never a campaign abort (and a session may carry
        # profiles the global tables don't know).  Only structural
        # mistakes that would silently run the wrong campaign fail fast.
        if not self.arches:
            raise PlanError("a plan needs at least one architecture")
        if not self.compilers:
            raise PlanError("a plan needs at least one compiler")
        if not self.opts:
            raise PlanError("a plan needs at least one optimisation level")
        if self.shard is not None:
            shard_k, shard_n = self.shard
            if shard_n < 1 or not (0 <= shard_k < shard_n):
                raise PlanError(f"bad shard {self.shard!r}: need 0 <= k < n")

    # ------------------------------------------------------------------ #
    def resolve_tests(self, shapes=None) -> Tuple[CLitmus, ...]:
        """The concrete test list (generating from ``config`` or draining
        a streaming source if needed).

        ``shapes`` is the shape registry config names resolve against —
        the engine passes the session's overlay, so plans can name
        session-private shapes.  This is the single point where a
        :class:`TestSource` materialises: plans hold sources lazily, the
        engine resolves them once per run."""
        if isinstance(self.tests, tuple):
            return self.tests  # already materialised — no copy
        return tuple(
            as_source(self.tests, self.config).iter_tests(shapes=shapes)
        )

    def split(self, n: int) -> Tuple["CampaignPlan", ...]:
        """The n deterministic shard plans of this (unsharded) plan."""
        if self.shard is not None:
            raise PlanError(f"plan is already the {self.shard!r} shard")
        if n < 1:
            raise PlanError(f"cannot split into {n} shards")
        return tuple(replace(self, shard=(k, n)) for k in range(n))

    def with_model(self, source_model: str) -> "CampaignPlan":
        """The same sweep under a different source model (Claim 4 re-runs)."""
        return replace(self, source_model=source_model)

    def describe(self) -> Dict[str, object]:
        """A JSON-able summary (no test bodies — those can be huge)."""
        if isinstance(self.tests, TestSource):
            tests: object = self.tests.describe()
        elif self.tests is None:
            tests = None
        else:
            tests = len(self.tests)
        return {
            "tests": tests,
            "config": None if self.config is None else self.config.__class__.__name__,
            "arches": list(self.arches),
            "opts": list(self.opts),
            "compilers": list(self.compilers),
            "source_model": self.source_model,
            "budget_candidates": self.budget_candidates,
            "augment": self.augment,
            "workers": self.workers,
            "processes": self.processes,
            "shard": list(self.shard) if self.shard else None,
            "resume": self.resume,
            "mode": self.mode,
            "profiles": None if self.profiles is None else list(self.profiles),
            "mutations": (
                None if self.mutations is None else list(self.mutations)
            ),
            "mutation_rounds": self.mutation_rounds,
            "mutation_limit": self.mutation_limit,
            "reduce": self.reduce,
            "lint": self.lint,
        }


@dataclass(frozen=True)
class FarmPlan:
    """Everything one regression-farm pass needs (see :mod:`repro.api.farm`).

    A farm plan names a *corpus root* (the directory holding
    ``MANIFEST.json``, suites and blessed baselines) plus optional
    filters; the manifest — not the plan — decides what tests run under
    which profiles and models, so the same plan replays any corpus.
    """

    #: the corpus root directory (must contain ``MANIFEST.json``)
    root: str = ""
    #: restrict the pass to these suite names (``None`` = every suite)
    suites: Optional[Tuple[str, ...]] = None
    #: restrict to these profile names (``None`` = every blessed profile)
    profiles: Optional[Tuple[str, ...]] = None
    #: override the blessed source model — the deliberate-perturbation
    #: lever (a farm run under a different model *should* drift)
    source_model: Optional[str] = None
    #: worker threads / processes, exactly as in :class:`CampaignPlan`
    workers: int = 1
    processes: int = 0
    #: re-bless: write the observed records as the new baselines instead
    #: of failing on drift
    bless: bool = False

    def __post_init__(self) -> None:
        for name in ("suites", "profiles"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if not self.root:
            raise PlanError("a farm plan needs a corpus root directory")
        if self.workers < 1:
            raise PlanError(f"workers must be >= 1, got {self.workers}")
        if self.processes < 0:
            raise PlanError(f"processes must be >= 0, got {self.processes}")
        if self.bless and self.source_model is not None:
            # blessing under an override would store verdicts the
            # manifest attributes to a different model — edit the
            # manifest's model instead, then bless
            raise PlanError(
                "cannot bless under a source_model override; change the "
                "model in MANIFEST.json and bless that"
            )
        for name in ("suites", "profiles"):
            value = getattr(self, name)
            if value is not None and not value:
                raise PlanError(
                    f"empty {name}= filter would run nothing; pass None "
                    f"to run every blessed {name.rstrip('s')}"
                )

    def describe(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "suites": None if self.suites is None else list(self.suites),
            "profiles": (
                None if self.profiles is None else list(self.profiles)
            ),
            "source_model": self.source_model,
            "workers": self.workers,
            "processes": self.processes,
            "bless": self.bless,
        }
