#!/usr/bin/env python3
"""Hardware vs models: why T´el´echat replaced silicon with simulation.

Reproduces the paper's §IV-A comparison with C4: the same Fig. 7
load-buffering test is checked (a) on simulated silicon the way the
litmus tool + C4 would, across several chips and seeds, and (b) under the
official AArch64 model the way T´el´echat does.  In-order silicon — the
Raspberry Pi class C4 tested on — can never exhibit the behaviour, so C4
misses it; the model always allows it, so T´el´echat always finds it.

Run:  python examples/hardware_vs_models.py
"""

from repro.baselines import c4_test
from repro.compiler import make_profile
from repro.hw import get_chip, list_chips, run_on_hardware
from repro.papertests import fig7_lb
from repro.pipeline import run_test_tv
from repro.tools import assembly_to_litmus, compile_and_disassemble, prepare


def main() -> None:
    litmus = fig7_lb()
    profile = make_profile("llvm", "-O3", "aarch64")

    print("== the litmus-on-hardware view ==")
    prepared = prepare(litmus)
    c2s = compile_and_disassemble(prepared, profile)
    compiled = assembly_to_litmus(c2s.obj, prepared.condition, listing=c2s.listing)
    for name in ("raspberry-pi", "apple-a9", "thunderx2"):
        chip = get_chip(name)
        result = run_on_hardware(compiled, chip, runs=400, seed=7, stress=True)
        lb_seen = any(
            o.as_dict().get("out_P0_r0") == 1 and o.as_dict().get("out_P1_r0") == 1
            for o in result.observed
        )
        print(f"\n{chip.name}: {chip.description}")
        print(f"  400 stressed runs -> {len(result.observed)} distinct outcomes; "
              f"LB outcome seen: {lb_seen}; "
              f"architecturally-allowed outcomes missed: {len(result.missed)}")

    print("\n== C4 (testC4: hardware outcomes vs source model) ==")
    for name in ("raspberry-pi", "apple-a9"):
        for seed in (1, 2):
            result = c4_test(litmus, profile, chip=name, runs=400,
                             seed=seed, stress=True)
            print(f"  chip={name:13s} seed={seed}: "
                  f"{'BUG FOUND' if result.found_bug else 'nothing found'}")

    print("\n== T´el´echat (test_tv: model outcomes vs source model) ==")
    for run in (1, 2):
        result = run_test_tv(litmus, profile)
        print(f"  run {run}: verdict={result.verdict} "
              f"({len(result.comparison.positive)} new outcome(s)) "
              f"— identical every time, on any machine")

    print("\nConclusion (paper Table II): moving the compiled-test")
    print("environment from silicon to the architecture model buys")
    print("determinism and coverage up to the enumeration bounds.")


if __name__ == "__main__":
    main()
