#!/usr/bin/env python3
"""Render candidate executions as Graphviz graphs (the paper's Fig. 2).

Simulates the paper's Fig. 1 test under RC11 keeping the allowed
executions, and writes a DOT file with one cluster per execution —
node labels and edge colours follow herd's conventions.  Render with:

    python examples/render_executions.py > fig2.dot
    dot -Tpng fig2.dot -o fig2.png
"""

from repro.herd import simulate_c, simulation_to_dot
from repro.papertests import fig1_exchange


def main() -> None:
    litmus = fig1_exchange()
    result = simulate_c(litmus, "rc11", keep_executions=True)
    print(simulation_to_dot(result.executions, name="fig2",
                            relations=("po", "rf", "co", "fr", "rmw")))


if __name__ == "__main__":
    main()
