#!/usr/bin/env python3
"""The state explosion and the s2l optimiser (paper §IV-E, Fig. 11).

Compiles the three-thread load-buffering chain at -O0 (address
materialisation through the GOT plus stack spill/reload traffic — every
one of them a genuine memory event) and simulates it raw and optimised,
showing the candidate-count blow-up and the milliseconds-after-rewriting
result of the paper's Claim 5.

Run:  python examples/state_explosion.py
"""

import time

from repro.asm import total_instructions
from repro.compiler import make_profile
from repro.herd import Budget, exhaustive_stages, simulate_asm
from repro.core.errors import SimulationTimeout
from repro.papertests import fig11_lb3
from repro.tools import (
    S2LStats,
    assembly_to_litmus,
    compile_and_disassemble,
    prepare,
)


def simulate(litmus, budget=None, stages=None):
    start = time.perf_counter()
    result = simulate_asm(litmus, budget=budget, stages=stages)
    return result, time.perf_counter() - start


def main() -> None:
    prepared = prepare(fig11_lb3())
    profile = make_profile("llvm", "-O0", "aarch64")
    c2s = compile_and_disassemble(prepared, profile)

    stats = S2LStats()
    raw = assembly_to_litmus(c2s.obj, prepared.condition, listing=c2s.listing,
                             optimise=False)
    optimised = assembly_to_litmus(c2s.obj, prepared.condition,
                                   listing=c2s.listing, optimise=True,
                                   stats=stats)

    print("Fig. 11: three-thread load buffering, compiled at -O0 (PIC)\n")
    print("compiled P0 before optimisation:")
    for line in c2s.listing["P0"]:
        print(f"    {line}")
    print(f"\ninstructions: raw={total_instructions(raw)} "
          f"optimised={total_instructions(optimised)} "
          f"(s2l removed {stats.total_removed}: "
          f"{stats.removed_got_loads} GOT loads, "
          f"{stats.removed_stack_accesses} stack accesses, "
          f"{stats.removed_dead_movaddr} dead address materialisations)")

    print("\nsimulating the OPTIMISED test under the AArch64 model...")
    opt_result, opt_seconds = simulate(optimised)
    print(f"  {opt_result.stats.candidates} candidates, "
          f"{len(opt_result.outcomes)} outcomes, {opt_seconds*1000:.1f} ms")

    print("\nsimulating the RAW test brute-force (herd's one-hour-timeout "
          "analogue: a 400-candidate budget)...")
    try:
        simulate(raw, budget=Budget(max_candidates=400),
                 stages=exhaustive_stages())
    except SimulationTimeout as exc:
        print(f"  TIMEOUT after {exc.candidates_explored} candidates — "
              "the paper's non-terminating unoptimised.litmus")

    print("\nsimulating the RAW test brute-force to completion (no budget)...")
    raw_result, raw_seconds = simulate(raw, budget=Budget(max_candidates=10_000_000),
                                       stages=exhaustive_stages())
    print(f"  {raw_result.stats.candidates} candidates, {raw_seconds*1000:.0f} ms "
          f"({raw_seconds/max(opt_seconds, 1e-9):.0f}x slower)")

    print("\nsimulating the RAW test with the staged solver "
          "(coherence pruning on)...")
    staged_result, staged_seconds = simulate(raw)
    print(f"  {staged_result.stats.candidates} candidates "
          f"({staged_result.stats.total_pruned} pruned: "
          f"{staged_result.stats.rf_sources_pruned} rf sources, "
          f"{staged_result.stats.pruned_co_prefixes} co prefixes), "
          f"{staged_seconds*1000:.1f} ms")

    observables = sorted(prepared.init)
    raw_set = {o.project(observables) for o in raw_result.outcomes}
    opt_set = {o.project(observables) for o in opt_result.outcomes}
    print("\nsoundness check — projected outcome sets agree:",
          "yes" if raw_set == opt_set else "NO (bug!)")


if __name__ == "__main__":
    main()
