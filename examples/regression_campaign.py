#!/usr/bin/env python3
"""Regression testing, the way the paper deploys it at Arm (§IV-F).

Two industry flows on top of the same tool-chain:

1. **Nightly differential campaign** (paper Table IV, scaled): a diy
   suite crossed with compilers × flags × architectures; the per-cell
   positive/negative counts form the regression dashboard.

2. **Evaluating a code-generation proposal** (the Google LDAPR query
   [57]): compile the acquire suite with the proposed mapping, compare
   outcomes against the C/C++ oracle — accept if no positive differences
   appear.

Run:  python examples/regression_campaign.py
"""

from repro.api import CampaignPlan, CellFinished, Session
from repro.core.events import MemoryOrder
from repro.tools.diy import DiyConfig, generate


def nightly_campaign() -> None:
    print("== nightly differential campaign (Table IV, scaled) ==\n")
    config = DiyConfig(
        shapes=("MP", "LB", "SB", "S", "R"),
        orders=("rlx",),
        fences=(None, MemoryOrder.SC),
        deps=("po", "data", "ctrl2"),
        variants=("load-store",),
    )
    # one session for the whole nightly run: its caches simulate each
    # test's source side once per source model, and a re-run of an
    # unchanged cell is free
    session = Session()
    plan = CampaignPlan(
        config=config,
        arches=("aarch64", "armv7", "riscv64", "ppc64", "x86_64", "mips64"),
        opts=("-O1", "-O2"),
        compilers=("llvm", "gcc"),
        source_model="rc11",
        workers=4,
    )
    # consume the event stream live — a dashboard would ingest these;
    # stream.report() folds whatever ran into the batch Table IV
    stream = session.campaign(plan)
    first_bug = None
    for event in stream:
        if (first_bug is None and isinstance(event, CellFinished)
                and event.verdict == "positive"):
            first_bug = event
            print(f"first positive streamed in: {event.test} "
                  f"{event.compiler}{event.opt} -> {event.arch}\n")
    report = stream.report()
    print(report.table())
    print(f"\nsource simulations: {report.source_simulations} "
          f"for {report.compiled_tests} cells "
          f"({report.workers} workers)")
    print("\npositives drill-down (first 8):")
    for test, arch, opt, compiler in report.positives[:8]:
        print(f"  {test:12s} {compiler}{opt} -> {arch}")
    print("\nre-run under rc11+lb (ISO C/C++ permits load buffering):")
    relaxed = session.run(
        CampaignPlan(
            config=config,
            arches=("aarch64", "armv7", "riscv64", "ppc64"),
            opts=("-O1", "-O2"),
            compilers=("llvm", "gcc"),
            source_model="rc11+lb",
            workers=4,
        )
    )
    print(f"  positive differences: {relaxed.total_positive()} "
          "(all vanish — artefact Claim 4)")


def ldapr_proposal() -> None:
    print("\n== evaluating the LDAPR proposal (§IV-F, [57]) ==\n")
    suite = generate(DiyConfig(
        shapes=("MP", "LB", "SB", "S", "R"),
        orders=("ar",),
        fences=(None,),
        deps=("po", "data"),
        variants=("load-store",),
    ))
    from repro.compiler import make_profile

    session = Session()
    ldar = make_profile("llvm", "-O2", "aarch64", rcpc=False)
    ldapr = make_profile("llvm", "-O2", "aarch64", rcpc=True)
    positives = 0
    weaker = 0
    for litmus in suite:
        baseline = session.test(litmus, ldar)
        proposal = session.test(litmus, ldapr)
        if proposal.found_bug:
            positives += 1
        if (baseline.comparison.target_outcomes
                < proposal.comparison.target_outcomes):
            weaker += 1
    print(f"  acquire suite size          : {len(suite)}")
    print(f"  positive differences (LDAPR): {positives}")
    print(f"  tests with extra (allowed) outcomes: {weaker}")
    verdict = "ACCEPT" if positives == 0 else "REJECT"
    print(f"  proposal verdict            : {verdict} — matches the paper: "
          "Arm's compiler team accepted the change based on this testing")


if __name__ == "__main__":
    nightly_campaign()
    ldapr_proposal()
