#!/usr/bin/env python3
"""Quickstart: test one compilation with T´el´echat in ~20 lines.

Takes the paper's Fig. 7 load-buffering test, compiles it with the
modelled ``clang -O3`` for AArch64, simulates source and compiled tests
under their memory models, and prints the mcompare verdict — the exact
flow of paper Fig. 5.

Run:  python examples/quickstart.py
"""

from repro.api import Session
from repro.lang import parse_c_litmus

LITMUS = r"""
C quickstart_lb
{ *x = 0; *y = 0; }

void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_thread_fence(memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}

void P1(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  atomic_thread_fence(memory_order_relaxed);
  atomic_store_explicit(x, 1, memory_order_relaxed);
}

exists (P0:r0=1 /\ P1:r0=1)
"""


def main() -> None:
    litmus = parse_c_litmus(LITMUS, "quickstart_lb")
    session = Session()
    profile = session.profile("llvm-O3-AArch64")

    print(f"compiler profile : {profile.name}")
    print(f"source model     : rc11   |   target model: aarch64\n")

    result = session.test(litmus, profile, source_model="rc11")
    print(result.comparison.pretty())
    print()
    print(f"verdict          : {result.verdict}")
    print(f"compiled LoC     : {result.compiled_loc} instructions "
          f"({result.s2l_stats.total_removed} removed by s2l)")
    print(f"simulation time  : source {result.source_seconds*1000:.1f} ms, "
          f"compiled {result.target_seconds*1000:.1f} ms")

    # the ISO C/C++ standard permits load buffering: under rc11+lb the
    # "bug" disappears (it is an RC11-only positive difference)
    relaxed = session.test(litmus, profile, source_model="rc11+lb")
    print(f"\nunder rc11+lb    : {relaxed.verdict} "
          "(ISO C/C++ permits load-to-store reordering)")


if __name__ == "__main__":
    main()
