#!/usr/bin/env python3
"""Bug hunting: reproduce the paper's §IV-B/§IV-C bug reports.

Runs the Fig. 1 / Fig. 10 / 128-bit bug studies across compiler epochs —
the same experiments the paper used to report LLVM issues 68428, 62652,
61431 and 61770 and validate their fixes.

Run:  python examples/bug_hunting.py
"""

from repro.compiler import bugs, make_profile
from repro.lang.parser import parse_c_litmus
from repro.papertests import atomics_128, fig1_exchange, fig10_mp_rmw
from repro.pipeline import run_test_tv

STP_ENDIAN = """
C stp_endian
{ *x = 0; }
void P0(atomic_int128* x) { atomic_store_explicit(x, 1, memory_order_relaxed); }
void P1(atomic_int128* x) { __int128 r0 = atomic_load_explicit(x, memory_order_relaxed); }
exists (P1:r0=1)
"""

CONST_LOAD = """
C const_load
{ const *c = 5; }
void P0(atomic_int128* c) { __int128 r0 = atomic_load_explicit(c, memory_order_seq_cst); }
exists (P0:r0=5)
"""


def report(title, litmus, profiles, extra=None):
    print(f"\n== {title} ==")
    for label, profile in profiles:
        result = run_test_tv(litmus, profile)
        line = f"  {label:24s} -> {result.verdict}"
        if extra:
            line += f"   {extra(result)}"
        print(line)
        if result.found_bug:
            for outcome in sorted(result.comparison.positive,
                                  key=lambda o: o.bindings):
                print(f"      forbidden-by-source outcome observed: {outcome}")


def main() -> None:
    print("T´el´echat bug-finding campaign (paper §IV-B / §IV-C)")

    report(
        "Fig. 1: atomic_exchange reorders past acquire fence [LLVM #68428]",
        fig1_exchange(),
        [
            ("llvm-16 -O2 (reported)", make_profile("llvm", "-O2", "aarch64", version=16)),
            ("llvm-17 -O2 (fixed)", make_profile("llvm", "-O2", "aarch64", version=17)),
        ],
    )

    report(
        "Fig. 10: unused fetch_add -> STADD/LDADD-xzr [LLVM 35094, GCC LSE]",
        fig10_mp_rmw(),
        [
            ("llvm-11 -O2 (past)", make_profile("llvm", "-O2", "aarch64", version=11)),
            ("gcc-9 -O2 (past)", make_profile("gcc", "-O2", "aarch64", version=9)),
            ("llvm-16 -O2 (latest)", make_profile("llvm", "-O2", "aarch64", version=16)),
            ("gcc-12 -O2 (latest)", make_profile("gcc", "-O2", "aarch64", version=12)),
        ],
    )

    report(
        "128-bit seq_cst load via bare LDP (Armv8.4) [LLVM #62652]",
        atomics_128(),
        [
            ("llvm-16 v8.4 (reported)", make_profile("llvm", "-O2", "aarch64", version=16, v84=True)),
            ("llvm-17 v8.4 (fixed)", make_profile("llvm", "-O2", "aarch64", version=17, v84=True)),
        ],
    )

    report(
        "128-bit store wrong-endian [LLVM #61431]",
        parse_c_litmus(STP_ENDIAN, "stp_endian"),
        [
            ("llvm-16 v8.4 (reported)", make_profile("llvm", "-O2", "aarch64", version=16, v84=True)),
            ("llvm-17 v8.4 (fixed)", make_profile("llvm", "-O2", "aarch64", version=17, v84=True)),
        ],
    )

    print("\n== 128-bit const atomic load crash [LLVM #61770] ==")
    for label, profile in [
        ("llvm-16 v8.0", make_profile("llvm", "-O2", "aarch64", version=16, v84=False)),
        ("llvm-11 v8.4 (pre-fix)", make_profile("llvm", "-O2", "aarch64", version=11, v84=True)),
        ("llvm-17 v8.4 (fixed)", make_profile("llvm", "-O2", "aarch64", version=17, v84=True)),
    ]:
        result = run_test_tv(parse_c_litmus(CONST_LOAD, "const_load"), profile)
        crash = result.target_result.has_const_violation
        print(f"  {label:24s} -> {'RUN-TIME CRASH (write to .rodata)' if crash else 'clean'}")

    print("\nBug flags carried by each modelled epoch:")
    for compiler, version in (("llvm", 11), ("llvm", 16), ("gcc", 9), ("gcc", 12)):
        profile = make_profile(compiler, "-O2", "aarch64", version=version)
        flags = ", ".join(sorted(profile.bug_flags)) or "(none)"
        print(f"  {compiler}-{version}: {flags}")


if __name__ == "__main__":
    main()
