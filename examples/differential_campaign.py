#!/usr/bin/env python3
"""First-class differential campaigns (paper §IV-D) on the staged toolchain.

Differential testing compares two *compilations* of the same source —
``gcc -O1`` vs ``gcc -O2``, or clang vs gcc — under their architecture
model.  A difference between compilers is a compatibility risk: code
from both is routinely linked together.  Three flows below:

1. **One test, two profiles** — ``Session.differential`` with the full
   drill-down (verdict, outcome sets, per-branch s2l stats).
2. **A differential campaign** — ``CampaignPlan(mode="differential")``
   streams through the same engine, events, store and CLI as the
   Table IV campaigns.  The demo reproduces the §IV-D Armv7 finding:
   GCC at ``-O1`` deletes the both-arms control dependency (``ctrl2``),
   so ``-O1`` code exhibits a load-buffering outcome ``-O2`` forbids.
3. **Artifact reuse** — the per-stage cache compiles each (test,
   profile) exactly once; a second campaign under another source model
   reuses every compiled litmus.

Run:  python examples/differential_campaign.py
"""

from repro.api import CampaignPlan, CellFinished, Session
from repro.core.events import MemoryOrder
from repro.tools.diy import DiyConfig


def one_pair() -> None:
    print("== one test, two profiles ==\n")
    session = Session()
    from repro.papertests import fig7_lb

    result = session.differential(
        fig7_lb(), "llvm-O1-AArch64", "llvm-O3-AArch64"
    )
    print(f"{result.test_name}: {result.profile_pair} -> {result.verdict}")
    print(f"  branch a: {len(result.comparison.source_outcomes)} outcomes, "
          f"{result.stats_a.total_removed} instructions removed by s2l")
    print(f"  branch b: {len(result.comparison.target_outcomes)} outcomes, "
          f"{result.stats_b.total_removed} instructions removed by s2l")
    print(f"  artifacts: {sorted(result.artifacts)}\n")


def armv7_ctrl_campaign() -> Session:
    print("== differential campaign: the §IV-D Armv7 control-dependency "
          "finding ==\n")
    config = DiyConfig(
        shapes=("LB", "MP", "SB"),
        orders=("rlx",),
        fences=(None, MemoryOrder.SC),
        deps=("po", "ctrl2"),
        variants=("load-store",),
    )
    session = Session()
    # branch a is the reference side: put -O2 first so the extra
    # behaviour of the dependency-dropping -O1 shows up as *positive*
    plan = CampaignPlan(
        config=config,
        mode="differential",
        profiles=("gcc-O2-ARM", "gcc-O1-ARM"),
        workers=2,
    )
    stream = session.campaign(plan)
    for event in stream:
        if isinstance(event, CellFinished) and event.verdict == "positive":
            print(f"  difference: {event.test} under {event.compiler}")
    report = stream.report()
    print()
    print(report.table())
    print()
    return session


def artifact_reuse(session: Session) -> None:
    print("== per-stage artifact reuse across a model sweep ==\n")
    stats = session.toolchain().cache.stats()
    before = stats["compile"]["misses"]
    print(f"compiles so far: {before} "
          f"(hits: {stats['compile']['hits']})")
    plan = CampaignPlan(
        config=DiyConfig(shapes=("LB", "MP", "SB"), orders=("rlx",),
                         fences=(None, MemoryOrder.SC),
                         deps=("po", "ctrl2"), variants=("load-store",)),
        mode="differential",
        profiles=("gcc-O2-ARM", "gcc-O1-ARM"),
    ).with_model("rc11+lb")  # the Claim 4 re-run
    session.campaign(plan).report()
    stats = session.toolchain().cache.stats()
    print(f"after the rc11+lb re-run: {stats['compile']['misses']} compiles "
          f"(unchanged: every compiled litmus was reused), "
          f"{stats['compile']['hits']} cache hits")


def main() -> None:
    one_pair()
    session = armv7_ctrl_campaign()
    artifact_reuse(session)


if __name__ == "__main__":
    main()
