"""Fig. 9 — the local variable problem and the l2c augmentation.

Paper claims: ``clang -O2`` deletes the unused locals of the plain LB
test, leaving ``{P0:r0=0; P1:r0=0}`` as the only checkable outcome; the
l2c augmentation (persisting locals to globals) restores all four.
"""

from benchmarks._report import banner, row

from repro.compiler import make_profile
from repro.papertests import fig9_lb_plain
from repro.pipeline import test_compilation


def test_bench_fig9_local_variable_problem(benchmark):
    litmus = fig9_lb_plain()
    profile = make_profile("llvm", "-O2", "aarch64")

    def both():
        bare = test_compilation(litmus, profile, augment=False)
        augmented = test_compilation(litmus, profile, augment=True)
        return bare, augmented

    bare, augmented = benchmark(both)

    banner("Fig. 9: unused-local deletion masks outcomes; augmentation fixes")
    row("outcomes without augmentation", "1 (all-zero only)",
        str(len(bare.comparison.target_outcomes)))
    row("outcomes with l2c augmentation", "4",
        str(len(augmented.comparison.target_outcomes)))
    lb_visible = any(
        o.as_dict().get("out_P0_r0") == 1 and o.as_dict().get("out_P1_r0") == 1
        for o in augmented.comparison.target_outcomes
    )
    row("LB behaviour observable after augmentation", "yes", str(lb_visible))
    assert len(bare.comparison.target_outcomes) == 1
    assert len(augmented.comparison.target_outcomes) == 4
    assert lb_visible
