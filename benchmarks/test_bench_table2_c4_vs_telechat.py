"""Table II — C4 versus T´el´echat, property by property.

Paper claims: the two tools differ only in the compiled-test environment
(hardware vs architecture model), and that one difference costs C4
determinism and coverage.
"""

from benchmarks._report import banner, row

from repro.baselines import c4_test
from repro.compiler import make_profile
from repro.hw import run_on_hardware
from repro.papertests import fig7_lb
from repro.pipeline import test_compilation
from repro.tools import assembly_to_litmus, compile_and_disassemble, prepare


def test_bench_table2_c4_vs_telechat(benchmark):
    litmus = fig7_lb()
    profile = make_profile("llvm", "-O3", "aarch64")

    def telechat_twice():
        first = test_compilation(litmus, profile)
        second = test_compilation(litmus, profile)
        return first, second

    first, second = benchmark(telechat_twice)

    banner("Table II: C4 vs Telechat")
    row("Telechat deterministic",
        "Yes",
        str(first.comparison.target_outcomes == second.comparison.target_outcomes))

    # C4 across two "machines" (seeds): different histograms
    seeds = [
        c4_test(litmus, profile, chip="apple-a9", runs=60, seed=s).hardware.counts
        for s in (1, 2)
    ]
    row("C4 deterministic", "No", str(seeds[0] == seeds[1]))

    chips = ("raspberry-pi", "apple-a9")
    per_chip = [
        c4_test(litmus, profile, chip=c, runs=500, seed=1, stress=True).found_bug
        for c in chips
    ]
    row("C4 verdict chip-dependent", "Yes (coverage ✗)",
        str(per_chip[0] != per_chip[1]))
    row("Telechat coverage up to bounds", "Yes", str(first.found_bug))
    row("Telechat automatic (no stress-tuning)", "Yes", "True")

    assert first.comparison.target_outcomes == second.comparison.target_outcomes
    assert seeds[0] != seeds[1]
    assert per_chip[0] != per_chip[1]
    assert first.found_bug
