"""Fig. 10 — the two historical fetch_add bugs and their heisenbug nature.

Paper claims: past LLVM/GCC allowed ``P1:r0=0 ∧ y=2`` (STADD selection /
LDADD destination zeroing); the latest versions no longer exhibit it; and
the bug hides when the RMW result is observed directly.
"""

from benchmarks._report import banner, row

from repro.compiler import make_profile
from repro.lang.parser import parse_c_litmus
from repro.papertests import FIG10_SOURCE, fig10_mp_rmw
from repro.pipeline import test_compilation


def test_bench_fig10_rmw_bugs(benchmark):
    litmus = fig10_mp_rmw()

    def bug_matrix():
        verdicts = {}
        for compiler, version in (("llvm", 11), ("gcc", 9),
                                  ("llvm", 16), ("gcc", 12)):
            profile = make_profile(compiler, "-O2", "aarch64", version=version)
            verdicts[f"{compiler}-{version}"] = test_compilation(
                litmus, profile
            ).verdict
        return verdicts

    verdicts = benchmark(bug_matrix)

    banner("Fig. 10: unused fetch_add reorders past the acquire fence")
    row("llvm-11 (past)", "bug", verdicts["llvm-11"])
    row("gcc-9 (past)", "bug", verdicts["gcc-9"])
    row("llvm-16 (latest)", "fixed", verdicts["llvm-16"])
    row("gcc-12 (latest)", "fixed", verdicts["gcc-12"])

    # the heisenbug: observing r1 directly hides the bug
    observed = parse_c_litmus(
        FIG10_SOURCE.replace(
            "exists (P1:r0=0 /\\ y=2)",
            "exists (P1:r0=0 /\\ P1:r1=1 /\\ y=2)",
        ),
        "fig10_observed",
    )
    profile = make_profile("llvm", "-O2", "aarch64", version=11)
    direct = test_compilation(observed, profile).verdict
    row("observing r1 directly (heisenbug)", "bug hides", direct)

    assert verdicts["llvm-11"] == "positive"
    assert verdicts["gcc-9"] == "positive"
    assert verdicts["llvm-16"] in ("equal", "negative")
    assert verdicts["gcc-12"] in ("equal", "negative")
    assert direct != "positive"
