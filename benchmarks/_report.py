"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured comparison block; ``pytest benchmarks/ --benchmark-only -s``
shows the full report.  Absolute numbers differ from the paper (our
substrate is a simulator, not a ThunderX2); the *shape* — who wins, what
vanishes, where the crossovers fall — is the reproduction target.
"""

from __future__ import annotations

import json


def merge_json_report(path, updates: dict) -> None:
    """Read-merge-write a shared ``BENCH_*.json`` trajectory file.

    Several benchmarks contribute sections to one report; merging (with
    an unreadable file treated as empty) keeps them from clobbering each
    other's keys.
    """
    merged = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged.update(updates)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True))


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def row(label: str, paper: str, measured: str) -> None:
    print(f"  {label:44s} paper: {paper:18s} measured: {measured}")
