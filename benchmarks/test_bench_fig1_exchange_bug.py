"""Fig. 1 — the atomic_exchange bug [38].

Paper claim: the outcome ``P1:r0=0 ∧ y=2`` is forbidden by the C/C++
model but allowed by the (buggy) LLVM compilation for Armv8.1+, because
the unused SWP destination turns the RMW read into a NORET event the
acquire fence no longer orders.
"""

from benchmarks._report import banner, row

from repro.compiler import make_profile
from repro.papertests import fig1_exchange
from repro.pipeline import test_compilation


def test_bench_fig1_exchange_bug(benchmark):
    litmus = fig1_exchange()
    buggy = make_profile("llvm", "-O2", "aarch64", version=16)
    fixed = make_profile("llvm", "-O2", "aarch64", version=17)

    result = benchmark(test_compilation, litmus, buggy)

    fixed_result = test_compilation(litmus, fixed)
    banner("Fig. 1: atomic_exchange reordering past an acquire fence")
    row("buggy LLVM verdict", "bug (r0=0 & y=2)", result.verdict)
    row("fixed LLVM verdict", "no bug", fixed_result.verdict)
    witness = [o.as_dict() for o in result.comparison.positive]
    row("witness outcome present",
        "{P1:r0=0; y=2}",
        str(any(o.get("out_P1_r0") == 0 and o.get("y") == 2 for o in witness)))
    assert result.verdict == "positive"
    assert fixed_result.verdict in ("equal", "negative")
