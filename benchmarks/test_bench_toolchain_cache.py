"""Per-stage artifact-cache reuse across a 2-profile × 2-model campaign.

PR 1's caches were per *cell*: re-checking a suite under a second source
model recompiled every test.  The staged toolchain caches per *stage*
under content addresses, so a model sweep (the paper's Claim 4 re-run:
``rc11`` → ``rc11+lb``) reuses every compile and lift artifact — only
the oracle simulations and compares re-run.  This benchmark measures
exactly that: a 2-profile differential campaign over a diy suite, run
cold under one model and warm under a second, with the per-stage
hit/miss counters and wall-clock written into
``BENCH_solver_speedup.json`` so the trajectory tracks the effect across
PRs.

Soundness is asserted throughout: the warm run must compile nothing new
(misses unchanged ⇔ each (test, profile) compiled exactly once for the
whole sweep), and each test's source side simulates once per model.
"""

import pathlib
import time

from benchmarks._report import banner, merge_json_report, row

from repro.api import CampaignPlan, Session
from repro.core.events import MemoryOrder
from repro.tools.diy import DiyConfig

_REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_solver_speedup.json"

CONFIG = DiyConfig(
    shapes=("LB", "SB", "MP", "S", "R"),
    orders=("rlx", "sc"),
    fences=(None, MemoryOrder.SC),
    deps=("po", "ctrl2"),
    variants=("load-store",),
)
PROFILES = ("llvm-O1-AArch64", "llvm-O3-AArch64")
MODELS = ("rc11", "rc11+lb")


def test_bench_toolchain_cache(benchmark):
    banner("Per-stage artifact cache: 2-profile × 2-model differential sweep")

    session = Session()
    plan = CampaignPlan(config=CONFIG, mode="differential",
                        profiles=PROFILES)
    tests = len(plan.resolve_tests())

    start = time.perf_counter()
    cold = session.campaign(plan).report()
    cold_seconds = time.perf_counter() - start
    cold_stats = session.toolchain().cache.stats()

    start = time.perf_counter()
    warm = session.campaign(plan.with_model(MODELS[1])).report()
    warm_seconds = time.perf_counter() - start
    warm_stats = session.toolchain().cache.stats()

    # correctness before speed: the acceptance identities
    assert cold.compiled_tests == warm.compiled_tests == tests
    assert cold_stats["compile"]["misses"] == tests * len(PROFILES)
    assert cold_stats["lift"]["misses"] == tests * len(PROFILES)
    # the warm (second-model) run compiled and lifted *nothing*
    assert warm_stats["compile"]["misses"] == cold_stats["compile"]["misses"]
    assert warm_stats["lift"]["misses"] == cold_stats["lift"]["misses"]
    # one source simulation per (test, model)
    assert cold.source_simulations == tests
    assert warm.source_simulations == tests

    compile_hits = (
        warm_stats["compile"]["hits"] + warm_stats["lift"]["hits"]
    )
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    row(f"cold sweep ({tests} tests × {len(PROFILES)} profiles)",
        "compiles every branch", f"{cold_seconds:.2f}s")
    row("warm sweep (second source model)",
        "reuses every compile+lift", f"{warm_seconds:.2f}s")
    row("compile+lift cache hits on the warm run",
        f"{tests * len(PROFILES) * 2} possible", f"{compile_hits}")
    row("model-sweep speedup from artifact reuse", "> 1x",
        f"{speedup:.2f}x")

    merge_json_report(_REPORT_PATH, {
        "toolchain_cache": {
            "tests": tests,
            "profiles": list(PROFILES),
            "models": list(MODELS),
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "model_sweep_speedup": round(speedup, 2),
            "compile_misses": warm_stats["compile"]["misses"],
            "compile_hits": warm_stats["compile"]["hits"],
            "lift_misses": warm_stats["lift"]["misses"],
            "lift_hits": warm_stats["lift"]["hits"],
            "source_sims_per_model": cold.source_simulations,
        },
    })

    benchmark(lambda: Session().campaign(CampaignPlan(
        config=DiyConfig(shapes=("LB",), orders=("rlx",), fences=(None,),
                         deps=("po",), variants=("load-store",)),
        mode="differential", profiles=PROFILES,
    )).report())
