"""Ablation — which s2l rewrite buys how much (design-choice study).

DESIGN.md calls out the s2l optimiser as the scalability fix (§IV-E).
This ablation runs the Fig. 11 compiled test with each rewrite enabled
in isolation:

* GOT-load folding (``ADRP; LDR; LDR/STR ⇝ ADRP; LDR/STR``) removes one
  read event per shared access — the paper's headline rewrite;
* stack spill forwarding removes the -O0 reload reads *and* the spill
  writes (reads multiply rf choices, writes multiply co permutations);
* dead-MOVADDR cleanup is cosmetic for event counts but shrinks the
  test (LoC matters for herd's front-end too).

Outcome soundness is asserted for every configuration.
"""

from benchmarks._report import banner, row

from repro.compiler import make_profile
from repro.herd import Budget, exhaustive_stages, simulate_asm
from repro.papertests import fig11_lb3
from repro.tools import S2LStats, compile_and_disassemble, prepare
from repro.tools.s2l import (
    drop_dead_movaddr,
    fold_got_loads,
    forward_stack_traffic,
    parse_thread,
)
from repro.tools.s2l import assembly_to_litmus
from repro.asm import AsmThread


def _with_passes(c2s, prepared, passes):
    """Build the asm litmus applying only the given rewrites."""
    base = assembly_to_litmus(c2s.obj, prepared.condition,
                              listing=c2s.listing, optimise=False)
    stats = S2LStats()
    threads = []
    for thread in base.threads:
        instrs = list(thread.instructions)
        for p in passes:
            if p is fold_got_loads:
                instrs = p(instrs, c2s.obj, stats)
            else:
                instrs = p(instrs, stats)
        threads.append(AsmThread(thread.name, tuple(instrs),
                                 thread.observed, thread.addr_env))
    import dataclasses

    return dataclasses.replace(base, threads=tuple(threads)), stats


def test_bench_ablation_s2l(benchmark):
    profile = make_profile("llvm", "-O0", "aarch64")
    prepared = prepare(fig11_lb3())
    c2s = compile_and_disassemble(prepared, profile)

    configs = {
        "none": [],
        "got-folding only": [fold_got_loads],
        "spill-forwarding only": [forward_stack_traffic],
        "dead-movaddr only": [drop_dead_movaddr],
        "all three": [fold_got_loads, forward_stack_traffic, drop_dead_movaddr],
    }

    budget = Budget(max_candidates=10_000_000)
    observables = sorted(prepared.init)

    def event_count(litmus):
        from repro.asm import elaborate_asm

        return sum(
            len(path.templates)
            for program in elaborate_asm(litmus)
            for path in program.paths
        )

    def run_all():
        results = {}
        for name, passes in configs.items():
            litmus, stats = _with_passes(c2s, prepared, passes)
            # brute-force enumeration: this ablation measures how each
            # s2l rewrite shrinks the *unpruned* candidate space
            sim = simulate_asm(litmus, budget=Budget(max_candidates=10_000_000),
                               stages=exhaustive_stages())
            results[name] = (stats.total_removed, sim, event_count(litmus))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    banner("Ablation: s2l rewrites on the Fig. 11 -O0 compiled test")
    baseline_outcomes = {
        o.project(observables) for o in results["none"][1].outcomes
    }
    base_candidates = results["none"][1].stats.candidates
    base_events = results["none"][2]
    for name, (removed, sim, events) in results.items():
        projected = {o.project(observables) for o in sim.outcomes}
        row(f"{name}",
            "fewer events/candidates, same outcomes",
            f"removed={removed:2d} events={events:2d} "
            f"candidates={sim.stats.candidates:4d} "
            f"time={sim.stats.elapsed_seconds*1000:6.1f} ms")
        assert projected == baseline_outcomes, f"{name} changed outcomes"

    # The two rewrites attack different axes of the explosion:
    # GOT folding removes single-writer read events — each has one rf
    # choice, so it cuts model-evaluation cost (event count), not the
    # candidate count; spill forwarding removes reload reads with TWO rf
    # choices each, so it collapses the candidate space.
    assert results["got-folding only"][2] < base_events
    assert results["got-folding only"][1].stats.candidates == base_candidates
    assert results["spill-forwarding only"][1].stats.candidates < base_candidates
    assert (results["all three"][1].stats.candidates
            <= results["spill-forwarding only"][1].stats.candidates)
    assert results["all three"][2] < results["spill-forwarding only"][2]
