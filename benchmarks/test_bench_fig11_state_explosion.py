"""Fig. 11 / Claim 5 — the state explosion and the s2l optimisation.

Paper claims: the unoptimised compiled three-thread LB test does not
terminate under herd (one-hour timeout); after T´el´echat's optimisation
the simulation terminates in milliseconds.  Our analogue: the raw -O0
compilation (GOT loads + spill traffic) blows the candidate budget, the
optimised test simulates in milliseconds with a fraction of the
candidates.
"""

import time

import pytest
from benchmarks._report import banner, row

from repro.compiler import make_profile
from repro.core.errors import SimulationTimeout
from repro.herd import Budget, simulate_asm
from repro.papertests import fig11_lb3
from repro.pipeline import test_compilation
from repro.tools import S2LStats, assembly_to_litmus, compile_and_disassemble, prepare


def test_bench_fig11_state_explosion(benchmark):
    profile = make_profile("llvm", "-O0", "aarch64")
    prepared = prepare(fig11_lb3())
    c2s = compile_and_disassemble(prepared, profile)
    stats = S2LStats()
    raw = assembly_to_litmus(c2s.obj, prepared.condition, listing=c2s.listing,
                             optimise=False)
    optimised = assembly_to_litmus(c2s.obj, prepared.condition,
                                   listing=c2s.listing, optimise=True,
                                   stats=stats)

    optimised_result = benchmark(simulate_asm, optimised)

    start = time.perf_counter()
    raw_result = simulate_asm(raw, budget=Budget(max_candidates=5_000_000))
    raw_seconds = time.perf_counter() - start

    banner("Fig. 11 / Claim 5: state explosion vs s2l optimisation")
    raw_loc = sum(len(t.instructions) for t in raw.threads)
    opt_loc = sum(len(t.instructions) for t in optimised.threads)
    row("compiled instructions raw -> optimised",
        "~3 per access -> 1", f"{raw_loc} -> {opt_loc}")
    row("lines removed by s2l", "~4 per access", str(stats.total_removed))
    row("candidates raw -> optimised", "factorial blow-up -> small",
        f"{raw_result.stats.candidates} -> {optimised_result.stats.candidates}")
    row("simulation time raw", "> 1 hour (herd, paper)",
        f"{raw_seconds*1000:.0f} ms")
    speedup = raw_seconds / max(optimised_result.stats.elapsed_seconds, 1e-9)
    row("optimised simulation", "milliseconds",
        f"{optimised_result.stats.elapsed_seconds*1000:.1f} ms "
        f"({speedup:.0f}x faster)")

    assert raw_result.stats.candidates > 20 * optimised_result.stats.candidates
    assert optimised_result.stats.elapsed_seconds < 0.5

    # the herd-timeout analogue: a tight budget kills the raw simulation
    with pytest.raises(SimulationTimeout):
        simulate_asm(raw, budget=Budget(max_candidates=400))
