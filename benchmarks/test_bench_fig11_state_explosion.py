"""Fig. 11 / Claim 5 — the state explosion and the s2l optimisation.

Paper claims: the unoptimised compiled three-thread LB test does not
terminate under herd (one-hour timeout); after T´el´echat's optimisation
the simulation terminates in milliseconds.  Our analogue: under
brute-force enumeration (:func:`exhaustive_stages`, the seed behaviour)
the raw -O0 compilation (GOT loads + spill traffic) blows the candidate
budget, while the optimised test simulates in milliseconds with a
fraction of the candidates.

The staged solver engine attacks the same explosion from the simulator
side: coherence-violation pruning collapses the raw test's factorial
coherence space to the handful of orders the models could ever accept —
strictly fewer candidates at identical outcomes.
"""

import time

import pytest
from benchmarks._report import banner, row

from repro.compiler import make_profile
from repro.core.errors import SimulationTimeout
from repro.herd import Budget, exhaustive_stages, simulate_asm
from repro.papertests import fig11_lb3
from repro.pipeline import test_compilation
from repro.tools import S2LStats, assembly_to_litmus, compile_and_disassemble, prepare


def test_bench_fig11_state_explosion(benchmark):
    profile = make_profile("llvm", "-O0", "aarch64")
    prepared = prepare(fig11_lb3())
    c2s = compile_and_disassemble(prepared, profile)
    stats = S2LStats()
    raw = assembly_to_litmus(c2s.obj, prepared.condition, listing=c2s.listing,
                             optimise=False)
    optimised = assembly_to_litmus(c2s.obj, prepared.condition,
                                   listing=c2s.listing, optimise=True,
                                   stats=stats)

    optimised_result = benchmark(simulate_asm, optimised)

    # the seed/brute-force behaviour: every coherence permutation
    start = time.perf_counter()
    raw_result = simulate_asm(raw, budget=Budget(max_candidates=5_000_000),
                              stages=exhaustive_stages())
    raw_seconds = time.perf_counter() - start

    # the staged solver on the same raw test: coherence pruning
    staged_result = simulate_asm(raw, budget=Budget(max_candidates=5_000_000))

    banner("Fig. 11 / Claim 5: state explosion vs s2l optimisation")
    raw_loc = sum(len(t.instructions) for t in raw.threads)
    opt_loc = sum(len(t.instructions) for t in optimised.threads)
    row("compiled instructions raw -> optimised",
        "~3 per access -> 1", f"{raw_loc} -> {opt_loc}")
    row("lines removed by s2l", "~4 per access", str(stats.total_removed))
    row("candidates raw -> optimised", "factorial blow-up -> small",
        f"{raw_result.stats.candidates} -> {optimised_result.stats.candidates}")
    row("simulation time raw", "> 1 hour (herd, paper)",
        f"{raw_seconds*1000:.0f} ms")
    speedup = raw_seconds / max(optimised_result.stats.elapsed_seconds, 1e-9)
    row("optimised simulation", "milliseconds",
        f"{optimised_result.stats.elapsed_seconds*1000:.1f} ms "
        f"({speedup:.0f}x faster)")
    row("staged solver on raw", "same outcomes, pruned",
        f"{staged_result.stats.candidates} candidates "
        f"({staged_result.stats.total_pruned} pruned, "
        f"{staged_result.stats.elapsed_seconds*1000:.1f} ms)")

    assert raw_result.stats.candidates > 20 * optimised_result.stats.candidates
    assert optimised_result.stats.elapsed_seconds < 0.5

    # the staged engine kills the explosion at identical outcome sets
    assert staged_result.stats.candidates < raw_result.stats.candidates
    assert staged_result.stats.total_pruned > 0
    assert staged_result.outcomes == raw_result.outcomes

    # the herd-timeout analogue: a tight budget kills the brute-force
    # simulation of the raw test
    with pytest.raises(SimulationTimeout):
        simulate_asm(raw, budget=Budget(max_candidates=400),
                     stages=exhaustive_stages())
