"""Table I — comparison of testing techniques on the same bug.

Paper claim: on the Fig. 10 RMW bug, the state-of-the-art is blind —
cmmtest suppresses thread-local deletions (Morisset et al.'s claim),
validc never leaves the IR, and C4's generator produces the *historical*
message-passing form that observes the RMW result directly, in which the
heisenbug hides (§IV-B) — while T´el´echat flags it automatically.
"""

from benchmarks._report import banner, row

from repro.baselines import c4_test, cmmtest_check, validc_check
from repro.compiler import make_profile
from repro.lang.parser import parse_c_litmus
from repro.papertests import FIG10_SOURCE, fig10_mp_rmw
from repro.pipeline import test_compilation


def test_bench_table1_techniques(benchmark):
    litmus = fig10_mp_rmw()
    # the historical test form C4-era generators emit: r1 is observed, so
    # the compiler keeps it live and the buggy selection never fires
    historical = parse_c_litmus(
        FIG10_SOURCE.replace(
            "exists (P1:r0=0 /\\ y=2)",
            "exists (P1:r0=0 /\\ P1:r1=1 /\\ y=2)",
        ),
        "fig10_historical",
    )
    buggy = make_profile("llvm", "-O2", "aarch64", version=11)

    def run_all():
        return {
            "telechat": test_compilation(litmus, buggy).found_bug,
            "c4": c4_test(historical, buggy, chip="thunderx2",
                          runs=300, seed=0, stress=True).found_bug,
            "cmmtest": bool(cmmtest_check(litmus, buggy).warnings),
            "validc": not validc_check(litmus, buggy).valid,
        }

    found = benchmark(run_all)

    banner("Table I: who finds the Fig. 10 bug? (buggy LLVM-11, AArch64)")
    row("Telechat (models only)", "finds bug", str(found["telechat"]))
    row("C4 (historical test form, on hardware)", "misses", str(found["c4"]))
    row("cmmtest (exec matching, local-safe claim)", "misses", str(found["cmmtest"]))
    row("validc (IR-level matching)", "misses", str(found["validc"]))
    assert found["telechat"]
    assert not found["c4"]
    assert not found["cmmtest"]
    assert not found["validc"]
