"""Table III — the generation grid: constructs × compilers × flags × arch.

Paper claim: the campaign exercises atomic operations, non-atomic
operations, fences, control flow and straight-line code, compiled by LLVM
and GCC at -O1..-Ofast (-Og for GCC) for six architectures.
"""

from benchmarks._report import banner, row

from repro.compiler import ARCHES, GCC_OPT_LEVELS, LLVM_OPT_LEVELS, make_profile
from repro.lang.ast import AtomicLoad, AtomicRMW, AtomicStore, Decl, Fence, If, PlainLoad, PlainStore
from repro.tools.diy import generate, paper_config


def _features(tests):
    seen = set()
    for litmus in tests:
        for thread in litmus.threads:
            for stmt in thread.body:
                if isinstance(stmt, Fence):
                    seen.add("fences")
                elif isinstance(stmt, If):
                    seen.add("control-flow")
                elif isinstance(stmt, (AtomicStore,)):
                    seen.add("atomic-ops")
                elif isinstance(stmt, PlainStore):
                    seen.add("non-atomic-ops")
                elif isinstance(stmt, Decl):
                    expr = stmt.expr
                    if isinstance(expr, AtomicRMW):
                        seen.add("rmw")
                    elif isinstance(expr, AtomicLoad):
                        seen.add("atomic-ops")
                    elif isinstance(expr, PlainLoad):
                        seen.add("non-atomic-ops")
        if not any(isinstance(s, If) for t in litmus.threads for s in t.body):
            seen.add("straight-line")
    return seen


def test_bench_table3_feature_grid(benchmark):
    tests = benchmark(generate, paper_config())
    features = _features(tests)

    banner("Table III: constructs × compilers × flags × architectures")
    row("C/C++ constructs covered",
        "atomics|non-atomics|fences|ctrl|straight",
        ",".join(sorted(features)))
    row("tests generated (scaled campaign input)", "167,184", str(len(tests)))
    grid = len(tests) * (len(LLVM_OPT_LEVELS) - 1 + len(GCC_OPT_LEVELS) - 1) * len(ARCHES)
    row("compiled-test grid size", "9,027,936", str(grid))
    for expected in ("atomic-ops", "non-atomic-ops", "fences",
                     "control-flow", "straight-line", "rmw"):
        assert expected in features, f"missing construct {expected}"
    # both compilers accept every architecture at every campaign level
    for arch in ARCHES:
        for compiler, levels in (("llvm", LLVM_OPT_LEVELS), ("gcc", GCC_OPT_LEVELS)):
            for opt in levels:
                make_profile(compiler, opt, arch)
    assert len(tests) > 200
