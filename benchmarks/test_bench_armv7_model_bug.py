"""§IV-E — the Armv7 model bug [35] found with a compiled SB test.

Paper claims: the pre-fix (unofficial) Armv7 Cat model did not recognise
``dmb ish`` as a fence, so a store-buffering test compiled with seq_cst
atomics was wrongly *allowed* the ``0/0`` outcome — forbidden by RC11 and
by the Armv7 hardware checked.  The fix (herdtools PR #385) restores
agreement.  Only model-based testing hits this limitation class.
"""

from benchmarks._report import banner, row

from repro.compiler import make_profile
from repro.papertests import sb_sc
from repro.pipeline import test_compilation


def test_bench_armv7_model_bug(benchmark):
    litmus = sb_sc()
    profile = make_profile("llvm", "-O2", "armv7")

    def both_models():
        buggy = test_compilation(litmus, profile, target_model="armv7_buggy")
        fixed = test_compilation(litmus, profile)
        return buggy, fixed

    buggy, fixed = benchmark(both_models)

    banner("§IV-E: the Armv7 model bug (dmb ish not a fence)")
    row("pre-fix model verdict on compiled SB", "false positive (model bug)",
        buggy.verdict)
    row("fixed model verdict", "agreement (no bug)", fixed.verdict)
    sb_outcome = any(
        o.as_dict().get("out_P0_r0") == 0 and o.as_dict().get("out_P1_r0") == 0
        for o in buggy.comparison.positive
    )
    row("wrongly-allowed outcome", "{P0:r0=0; P1:r0=0}", str(sb_outcome))
    assert buggy.verdict == "positive"
    assert fixed.verdict in ("equal", "negative")
    assert sb_outcome
