"""Staged solver engine vs brute-force enumeration on the Fig. 11 family.

Quantifies what the staged solver's pruning stages buy on the paper's
§IV-E state-explosion tests: the raw -O0 compilation (GOT loads + spill
traffic), the s2l-optimised test, and the three-thread source test.  For
each configuration both engines run — :func:`exhaustive_stages` (the
seed's brute-force behaviour) and the default staged pipeline — and the
prune counters, candidate counts and wall-clock go into
``BENCH_solver_speedup.json`` at the repo root so the perf trajectory
captures the refactor's effect across PRs.

Soundness is asserted throughout: pruning must never change an outcome
set, only the work done to reach it.
"""

import pathlib
import time

from benchmarks._report import banner, merge_json_report, row

from repro.compiler import make_profile
from repro.herd import Budget, exhaustive_stages, simulate_asm, simulate_c
from repro.papertests import fig11_lb3
from repro.tools import assembly_to_litmus, compile_and_disassemble, prepare

_REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_solver_speedup.json"


def _run(simulate, litmus, **kwargs):
    budget = Budget(max_candidates=10_000_000)
    start = time.perf_counter()
    exhaustive = simulate(litmus, budget=budget, stages=exhaustive_stages(), **kwargs)
    exhaustive_seconds = time.perf_counter() - start
    start = time.perf_counter()
    staged = simulate(litmus, budget=Budget(max_candidates=10_000_000), **kwargs)
    staged_seconds = time.perf_counter() - start
    return exhaustive, exhaustive_seconds, staged, staged_seconds


def test_bench_solver_speedup(benchmark):
    profile = make_profile("llvm", "-O0", "aarch64")
    prepared = prepare(fig11_lb3())
    c2s = compile_and_disassemble(prepared, profile)
    raw = assembly_to_litmus(c2s.obj, prepared.condition,
                             listing=c2s.listing, optimise=False)
    optimised = assembly_to_litmus(c2s.obj, prepared.condition,
                                   listing=c2s.listing, optimise=True)

    configs = [
        ("fig11-raw-O0", simulate_asm, raw, {}),
        ("fig11-optimised", simulate_asm, optimised, {}),
        ("fig11-source", simulate_c, fig11_lb3(), {}),
    ]

    record = {}
    banner("Staged solver engine: pruning vs brute force (Fig. 11 family)")
    for name, simulate, litmus, kwargs in configs:
        exhaustive, ex_s, staged, st_s = _run(simulate, litmus, **kwargs)
        # identical outcome sets: pruning only removes candidates every
        # model rejects
        assert staged.outcomes == exhaustive.outcomes, name
        assert staged.flags == exhaustive.flags, name
        assert staged.stats.candidates <= exhaustive.stats.candidates, name
        record[name] = {
            "exhaustive": dict(exhaustive.stats.as_dict(), wall_seconds=ex_s),
            "staged": dict(staged.stats.as_dict(), wall_seconds=st_s),
            "outcomes": len(staged.outcomes),
            "candidate_reduction": (
                exhaustive.stats.candidates - staged.stats.candidates
            ),
        }
        row(name, "fewer candidates, same outcomes",
            f"candidates {exhaustive.stats.candidates} -> "
            f"{staged.stats.candidates}, pruned {staged.stats.total_pruned}, "
            f"{ex_s*1000:.0f} -> {st_s*1000:.0f} ms")

    # the raw test is where the explosion lives: the staged engine must
    # strictly shrink its candidate space and record the prunes it made
    raw_rec = record["fig11-raw-O0"]
    assert raw_rec["candidate_reduction"] > 0
    assert raw_rec["staged"]["total_pruned"] > 0

    # timed rep of the staged engine on the raw test for the trajectory
    timed = benchmark(simulate_asm, raw)
    record["benchmark_staged_raw_seconds"] = timed.stats.elapsed_seconds

    # merge-write: the campaign-engine benchmark shares this report file
    merge_json_report(_REPORT_PATH, record)
    row("report", "BENCH_solver_speedup.json", str(_REPORT_PATH.name))


class _PairRelation:
    """The seed's pair-level relation semantics, kept as the baseline.

    Mirrors what ``Relation`` computed before the bitmask kernels: a
    frozenset of pairs plus a successor index, pairwise composition, and
    one-step relaxation to a transitive-closure fixpoint.  Only used to
    measure what the kernels buy.
    """

    def __init__(self, pairs):
        self.pairs = frozenset(pairs)
        succ = {}
        for a, b in self.pairs:
            succ.setdefault(a, set()).add(b)
        self._succ = succ

    def union(self, other):
        return _PairRelation(self.pairs | other.pairs)

    def compose(self, other):
        out = set()
        for a, b in self.pairs:
            for c in other._succ.get(b, ()):
                out.add((a, c))
        return _PairRelation(out)

    def transitive_closure(self):
        result = self
        while True:
            bigger = result.union(result.compose(self))
            if bigger.pairs == result.pairs:
                return result
            result = bigger


def _random_pairs(rng, n_events, n_pairs):
    pairs = set()
    while len(pairs) < n_pairs:
        pairs.add((rng.randrange(n_events), rng.randrange(n_events)))
    return sorted(pairs)


def test_bench_relation_kernels():
    """Microbench: bitmask kernels vs pair-level reference semantics.

    Transitive closure plus a ``let rec``-style fixpoint on random
    ~256-event relations — the shapes that dominate per-candidate model
    evaluation.  The kernel path must be at least 3x faster; both paths
    must agree exactly.
    """
    import random

    from repro.core.relations import Relation

    rng = random.Random(20240807)
    n_events = 256
    cases = [_random_pairs(rng, n_events, 2048) for _ in range(3)]

    banner("Relation kernels: bitmask rows vs pair-level baseline")

    # -- transitive closure ------------------------------------------- #
    start = time.perf_counter()
    ref_closures = [_PairRelation(pairs).transitive_closure() for pairs in cases]
    ref_closure_s = time.perf_counter() - start

    kernel_reps = 10
    start = time.perf_counter()
    for _ in range(kernel_reps):
        kernel_closures = [Relation(pairs).transitive_closure() for pairs in cases]
    kernel_closure_s = (time.perf_counter() - start) / kernel_reps

    for ref, kernel in zip(ref_closures, kernel_closures):
        assert kernel.pairs == ref.pairs

    # -- let-rec style fixpoint: hb = base | (hb ; base) --------------- #
    def ref_fixpoint(pairs):
        base = _PairRelation(pairs)
        current = _PairRelation(())
        while True:
            nxt = base.union(current.compose(base))
            if nxt.pairs == current.pairs:
                return current
            current = nxt

    def kernel_fixpoint(pairs):
        base = Relation(pairs)
        current = Relation.empty()
        while True:
            nxt = base.union(current.compose(base))
            if nxt == current:
                return current
            current = nxt

    start = time.perf_counter()
    ref_fix = [ref_fixpoint(pairs) for pairs in cases]
    ref_fix_s = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(kernel_reps):
        kernel_fix = [kernel_fixpoint(pairs) for pairs in cases]
    kernel_fix_s = (time.perf_counter() - start) / kernel_reps

    for ref, kernel in zip(ref_fix, kernel_fix):
        assert kernel.pairs == ref.pairs

    closure_speedup = ref_closure_s / kernel_closure_s
    fixpoint_speedup = ref_fix_s / kernel_fix_s
    row("transitive_closure (256 events)", ">=3x",
        f"{closure_speedup:.1f}x ({ref_closure_s*1000:.0f} -> "
        f"{kernel_closure_s*1000:.1f} ms)")
    row("let-rec fixpoint (256 events)", ">=3x",
        f"{fixpoint_speedup:.1f}x ({ref_fix_s*1000:.0f} -> "
        f"{kernel_fix_s*1000:.1f} ms)")
    assert closure_speedup >= 3.0
    assert fixpoint_speedup >= 3.0

    merge_json_report(_REPORT_PATH, {
        "relation_kernels": {
            "events": n_events,
            "cases": len(cases),
            "closure_reference_seconds": ref_closure_s,
            "closure_kernel_seconds": kernel_closure_s,
            "closure_speedup": closure_speedup,
            "fixpoint_reference_seconds": ref_fix_s,
            "fixpoint_kernel_seconds": kernel_fix_s,
            "fixpoint_speedup": fixpoint_speedup,
        },
    })
