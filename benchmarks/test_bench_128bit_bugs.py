"""§IV-C — the three 128-bit atomics bugs [36][37][39].

Paper claims:

* [37]: a 128-bit seq_cst load implemented as a bare LDP (Armv8.4) can
  reorder before a prior RMW's store;
* [39]: 128-bit atomic stores write their register pair wrong-endian,
  observable as a 2^64-swapped value;
* [36]: 128-bit *const* atomic loads crash at run time, because the
  pre-v8.4 lowering is an exclusive store-pair loop that writes to
  read-only memory (and no lock-free v8.0 fix exists).
"""

from benchmarks._report import banner, row

from repro.compiler import make_profile
from repro.lang.parser import parse_c_litmus
from repro.papertests import atomics_128
from repro.pipeline import test_compilation

STP_ENDIAN = """
C stp_endian
{ *x = 0; }
void P0(atomic_int128* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
void P1(atomic_int128* x) {
  __int128 r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=1)
"""

CONST_LOAD = """
C const_load
{ const *c = 5; }
void P0(atomic_int128* c) {
  __int128 r0 = atomic_load_explicit(c, memory_order_seq_cst);
}
exists (P0:r0=5)
"""


def test_bench_128bit_bugs(benchmark):
    banner("§IV-C: the 128-bit atomics bug reports")

    # [37] LDP seq_cst reordering
    ldp = benchmark(
        test_compilation,
        atomics_128(),
        make_profile("llvm", "-O2", "aarch64", version=16, v84=True),
    )
    ldp_fixed = test_compilation(
        atomics_128(),
        make_profile("llvm", "-O2", "aarch64", version=17, v84=True),
    )
    row("[37] bare-LDP seq_cst load (llvm-16, v8.4)", "bug", ldp.verdict)
    row("[37] with GCC-style barriers (fixed)", "no bug", ldp_fixed.verdict)

    # [39] wrong-endian STP
    endian = test_compilation(
        parse_c_litmus(STP_ENDIAN, "stp_endian"),
        make_profile("llvm", "-O2", "aarch64", version=16, v84=True),
    )
    flipped = {o.as_dict().get("x") for o in endian.comparison.positive}
    row("[39] wrong-endian store value", "1 becomes 2^64",
        str((1 << 64) in flipped))

    # [36] const atomic load crash
    const_v80 = test_compilation(
        parse_c_litmus(CONST_LOAD, "const_load"),
        make_profile("llvm", "-O2", "aarch64", version=16, v84=False),
    )
    const_fixed = test_compilation(
        parse_c_litmus(CONST_LOAD, "const_load"),
        make_profile("llvm", "-O2", "aarch64", version=17, v84=True),
    )
    row("[36] const load via STXP loop (v8.0)", "run-time crash",
        f"const-violation={const_v80.target_result.has_const_violation}")
    row("[36] const load via LDP (fixed v8.4)", "clean",
        f"const-violation={const_fixed.target_result.has_const_violation}")

    assert ldp.verdict == "positive"
    assert ldp_fixed.verdict in ("equal", "negative")
    assert (1 << 64) in flipped
    assert const_v80.target_result.has_const_violation
    assert not const_fixed.target_result.has_const_violation
