"""§IV-F — the LDAPR acquire-load case study (the Google proposal [57]).

Paper claims: compiling C/C++ acquire loads to LDAPR (Armv8.3 RCpc)
instead of LDAR is *correct* — T´el´echat finds no positive difference on
the acquire suite — even though LDAPR is strictly weaker: it drops the
``[L]; po; [A]`` ordering against a program-order-earlier store-release,
observable as extra (still source-allowed) outcomes.
"""

from benchmarks._report import banner, row

from repro.compiler import make_profile
from repro.core.events import MemoryOrder
from repro.pipeline import test_compilation
from repro.tools.diy import DiyConfig, generate

#: the c11_acq.conf analogue: acquire/release decorated families.
ACQ_SUITE = DiyConfig(
    shapes=("MP", "LB", "SB", "S", "R"),
    orders=("ar",),
    fences=(None,),
    deps=("po", "data"),
    variants=("load-store",),
)


def test_bench_ldapr_case_study(benchmark):
    tests = generate(ACQ_SUITE)
    ldar = make_profile("llvm", "-O2", "aarch64", rcpc=False)
    ldapr = make_profile("llvm", "-O2", "aarch64", rcpc=True)

    def run_suite():
        verdicts = []
        for litmus in tests:
            verdicts.append(
                (
                    test_compilation(litmus, ldar),
                    test_compilation(litmus, ldapr),
                )
            )
        return verdicts

    verdicts = benchmark(run_suite)

    banner("§IV-F: LDAR vs LDAPR on the acquire suite (the [57] proposal)")
    row("suite size", "c11_acq.conf", str(len(tests)))
    ldapr_positives = sum(1 for _, b in verdicts if b.found_bug)
    row("LDAPR positive differences", "0 (proposal accepted)",
        str(ldapr_positives))
    weaker = sum(
        1
        for a, b in verdicts
        if a.comparison.target_outcomes < b.comparison.target_outcomes
    )
    row("tests where LDAPR shows extra (allowed) outcomes",
        "> 0 (LDAPR weaker wrt prior STLR)", str(weaker))
    assert ldapr_positives == 0
    assert weaker > 0
    # every LDAR outcome is an LDAPR outcome (LDAR strictly stronger)
    for a, b in verdicts:
        assert a.comparison.target_outcomes <= b.comparison.target_outcomes
