"""Persistent-store and process-pool speedups for the Table IV campaign.

Three comparisons against the serial cold run of one Table IV slice:

* **warm store** — a resumed re-run against a fully populated
  :class:`CampaignStore` must re-simulate *zero* cells, so its cost is
  pure replay (the paper's nightly-regression deployment, §IV-F);
* **thread pool** — GIL-bound, so the speedup on this pure-Python
  workload is bounded;
* **process pool** — the ``ProcessPoolExecutor`` backend sidesteps the
  GIL; this is the row that lets campaigns scale with cores.

The numbers merge into ``BENCH_solver_speedup.json`` next to the solver
engine's trajectory so one file tracks the hot path across PRs.
"""

import os
import pathlib
import time

from benchmarks._report import banner, merge_json_report, row

from repro.pipeline import CampaignStore, run_campaign
from repro.tools.diy import DiyConfig

_REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_solver_speedup.json"

CONFIG = DiyConfig(
    shapes=("LB", "SB", "MP", "WRC"),
    orders=("rlx", "sc"),
    fences=(None,),
    deps=("po", "data", "ctrl2"),
    variants=("load-store",),
)
ARCHES = ("aarch64", "armv7")
OPTS = ("-O1", "-O2")
COMPILERS = ("llvm", "gcc")


def _campaign(**kwargs):
    start = time.perf_counter()
    report = run_campaign(config=CONFIG, arches=ARCHES, opts=OPTS,
                          compilers=COMPILERS, **kwargs)
    return report, time.perf_counter() - start


def test_bench_campaign_store(benchmark, tmp_path):
    store_path = tmp_path / "campaign.jsonl"

    banner("Persistent, shardable, process-parallel campaigns (Table IV slice)")
    cold, cold_seconds = _campaign(store=store_path)
    cells = sum(c.total for c in cold.cells.values())

    threaded, thread_seconds = _campaign(workers=4)
    processed, process_seconds = _campaign(processes=4)

    store = CampaignStore(store_path)
    warm, warm_seconds = _campaign(store=store, resume=True)

    # correctness before speed: every backend reproduces the serial table
    for report in (threaded, processed, warm):
        assert report.positives == cold.positives
        for key, cell in cold.cells.items():
            other = report.cells[key]
            assert (cell.positive, cell.negative, cell.equal) == (
                other.positive, other.negative, other.equal
            ), key

    # the acceptance bar: a warm store re-simulates nothing
    assert warm.store_hits == cells
    assert warm.source_simulations == 0

    # the pools can only beat serial when the machine has cores to give
    # them; record the cpu count so the trajectory stays interpretable
    cpus = os.cpu_count() or 1
    row("cold serial", "the baseline", f"{cells} cells in {cold_seconds:.2f}s")
    row("thread pool x4", "GIL-bound", f"{thread_seconds:.2f}s "
        f"({cold_seconds/thread_seconds:.1f}x on {cpus} cpus)")
    row("process pool x4", "scales with cores", f"{process_seconds:.2f}s "
        f"({cold_seconds/process_seconds:.1f}x on {cpus} cpus)")
    row("warm store", "0 cells re-simulated", f"{warm_seconds:.2f}s "
        f"({cold_seconds/warm_seconds:.0f}x)")

    # timed rep: the warm replay is the campaign engine's hot path now
    benchmark(run_campaign, config=CONFIG, arches=ARCHES, opts=OPTS,
              compilers=COMPILERS, store=store, resume=True)

    record = {
        "cells": cells,
        "cpu_count": cpus,
        "cold_serial_seconds": cold_seconds,
        "thread_pool_seconds": thread_seconds,
        "thread_pool_speedup": cold_seconds / thread_seconds,
        "process_pool_seconds": process_seconds,
        "process_pool_speedup": cold_seconds / process_seconds,
        "warm_store_seconds": warm_seconds,
        "warm_store_speedup": cold_seconds / warm_seconds,
        "warm_store_resimulated_cells": cells - warm.store_hits,
    }
    merge_json_report(_REPORT_PATH, {"campaign_engine": record})
    row("report", "BENCH_solver_speedup.json", "campaign_engine section")
