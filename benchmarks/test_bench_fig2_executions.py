"""Fig. 2 / Fig. 3 — candidate executions and outcomes of the Fig. 1 test.

Paper claim: the Fig. 1 program has four candidate executions whose
RC11-allowed outcomes are the three of Fig. 3 (``dabc`` and its outcome
``{P1:r0=0; y=2}`` are forbidden).
"""

from benchmarks._report import banner, row

from repro.herd import EnumerationStats, enumerate_candidates, simulate_c
from repro.lang.semantics import elaborate
from repro.papertests import fig1_exchange


def test_bench_fig2_executions(benchmark):
    litmus = fig1_exchange()

    def enumerate_all():
        stats = EnumerationStats()
        programs = elaborate(litmus)
        candidates = list(
            enumerate_candidates(dict(litmus.init), programs, stats=stats)
        )
        return candidates, stats

    candidates, stats = benchmark(enumerate_all)
    result = simulate_c(litmus, "rc11")
    outcomes = sorted(str(o) for o in result.outcomes)

    banner("Fig. 2/3: executions and RC11 outcomes of the Fig. 1 program")
    row("rf assignments explored", "4 executions shown", str(stats.rf_assignments))
    row("RC11-allowed outcomes", "3 (Fig. 3)", str(len(outcomes)))
    for outcome in outcomes:
        print(f"    {outcome}")
    row("forbidden outcome excluded", "{P1:r0=0; y=2}",
        str(not result.condition_holds(litmus.condition)))
    assert len(outcomes) == 3
    assert not result.condition_holds(litmus.condition)
