"""Table IV — the large-scale differential-testing campaign (scaled).

Paper claims reproduced in shape:

* positive differences appear on Armv8, Armv7, RISC-V and PowerPC — all
  of them load-buffering variants (the paper's 2352 = 294 LB variants ×
  flags; our counts scale with the configured suite);
* Intel x86-64 and MIPS show **zero** positives;
* gcc -O1 on Armv7 shows strictly more positives than clang -O1 (the
  §IV-D control-dependency deletion), masked again at -O2;
* re-running under ``rc11+lb`` makes every positive difference vanish
  (artefact Claim 4).
"""

import pytest
from benchmarks._report import banner, row

from repro.core.events import MemoryOrder
from repro.pipeline.campaign import run_campaign
from repro.tools.diy import DiyConfig

CONFIG = DiyConfig(
    shapes=("MP", "LB", "SB", "S", "R"),
    orders=("rlx",),
    fences=(None, MemoryOrder.SC),
    deps=("po", "data", "ctrl2"),
    variants=("load-store",),
)
ARCHES = ("aarch64", "armv7", "riscv64", "ppc64", "x86_64", "mips64")
OPTS = ("-O1", "-O2")


@pytest.fixture(scope="module")
def rc11_report():
    return run_campaign(config=CONFIG, arches=ARCHES, opts=OPTS,
                        compilers=("llvm", "gcc"), source_model="rc11")


def test_bench_table4_campaign(benchmark, rc11_report):
    small = DiyConfig(shapes=("LB",), orders=("rlx",), fences=(None,),
                      deps=("po",), variants=("load-store",))
    benchmark(
        run_campaign, config=small, arches=("aarch64",), opts=("-O2",),
        compilers=("llvm",), source_model="rc11",
    )

    report = rc11_report
    banner("Table IV (scaled): +ve/-ve differences per architecture")
    print(report.table())
    print()
    weak = ("aarch64", "armv7", "riscv64", "ppc64")
    strong = ("x86_64", "mips64")
    for arch in weak:
        row(f"{arch} positives", "> 0 (LB family)",
            str(report.total_positive(arch)))
        assert report.total_positive(arch) > 0
    for arch in strong:
        row(f"{arch} positives", "0", str(report.total_positive(arch)))
        assert report.total_positive(arch) == 0
    row("negative differences overall", "4-7% per cell",
        str(report.total_negative()))
    assert report.total_negative() > 0

    gcc_o1 = report.cell("armv7", "-O1", "gcc").positive
    clang_o1 = report.cell("armv7", "-O1", "llvm").positive
    gcc_o2 = report.cell("armv7", "-O2", "gcc").positive
    row("armv7 gcc -O1 vs clang -O1 positives", "3480 vs 2352 (gcc more)",
        f"{gcc_o1} vs {clang_o1}")
    row("armv7 gcc -O2 (data dep masks)", "back to parity", str(gcc_o2))
    assert gcc_o1 > clang_o1
    assert gcc_o2 < gcc_o1


def test_bench_table4_claim4_rc11_lb(rc11_report):
    """All positive differences disappear under rc11+lb."""
    report = run_campaign(config=CONFIG, arches=("aarch64", "armv7"),
                          opts=OPTS, compilers=("llvm", "gcc"),
                          source_model="rc11+lb")
    banner("Table IV / Claim 4: re-run under rc11+lb")
    row("positives under rc11", "> 0",
        str(rc11_report.total_positive("aarch64")
            + rc11_report.total_positive("armv7")))
    row("positives under rc11+lb", "0", str(report.total_positive()))
    assert report.total_positive() == 0
