"""Fig. 7 / Fig. 8 and artefact Claims 1–2 — the load-buffering miss.

Paper claims: Fig. 7's outcome ``P0:r0=1 ∧ P1:r0=1`` is forbidden by
RC11 (Fig. 8 left, 3 outcomes) but allowed by the compiled AArch64 test
(Fig. 8 right, 4 outcomes); C4 missed the behaviour on its hardware,
T´el´echat observes it deterministically; the same holds when targeting
Armv7, PowerPC and RISC-V.
"""

from benchmarks._report import banner, row

from repro.baselines import c4_test
from repro.compiler import make_profile
from repro.papertests import fig7_lb
from repro.pipeline import test_compilation


def test_bench_fig7_lb_and_c4_miss(benchmark):
    litmus = fig7_lb()
    profile = make_profile("llvm", "-O3", "aarch64")

    result = benchmark(test_compilation, litmus, profile)

    banner("Fig. 7/8: load buffering under RC11 vs compiled AArch64")
    row("RC11 source outcomes", "3 (Fig. 8 left)",
        str(len(result.comparison.source_outcomes)))
    row("compiled AArch64 outcomes", "4 (Fig. 8 right)",
        str(len(result.comparison.target_outcomes)))
    row("verdict", "positive (new behaviour)", result.verdict)

    c4 = c4_test(litmus, profile, chip="raspberry-pi", runs=500, seed=1,
                 stress=True)
    row("C4 on a Raspberry Pi", "misses the behaviour",
        "missed" if not c4.found_bug else "found")

    for arch in ("armv7", "ppc64", "riscv64"):
        other = test_compilation(litmus, make_profile("llvm", "-O3", arch))
        row(f"same behaviour targeting {arch}", "positive", other.verdict)
        assert other.verdict == "positive"

    assert len(result.comparison.source_outcomes) == 3
    assert len(result.comparison.target_outcomes) == 4
    assert result.verdict == "positive"
    assert not c4.found_bug
