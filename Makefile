# Convenience entry points; CI runs the same commands.

PYTHON ?= python

.PHONY: test bench lint docs-check examples profile

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks -q -s

# static analysis: the catlint/litmuslint sweep over every in-tree
# model, paper test and hunt seed always runs; ruff and mypy run when
# installed (CI installs them via `pip install -e .[lint]`) and are
# skipped — loudly — when absent, so the target works in the bare
# runtime environment too
lint:
	PYTHONPATH=src $(PYTHON) -m repro.pipeline.cli lint
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src; \
	else \
		echo "ruff not installed - skipped (pip install -e .[lint])"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed - skipped (pip install -e .[lint])"; \
	fi

# execute every fenced python block in README.md, docs/cookbook.md and
# docs/analysis.md — documentation examples are checked like tests and
# cannot rot
docs-check:
	$(PYTHON) scripts/check_docs.py README.md docs/cookbook.md docs/analysis.md

examples:
	PYTHONPATH=src $(PYTHON) -m repro.pipeline.cli examples

# where does solver time go? cProfile + per-stage wall-time counters
profile:
	$(PYTHON) scripts/profile_solver.py
