# Convenience entry points; CI runs the same commands.

PYTHON ?= python

.PHONY: test bench docs-check examples profile

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks -q -s

# execute every fenced python block in README.md and docs/cookbook.md —
# documentation examples are checked like tests and cannot rot
docs-check:
	$(PYTHON) scripts/check_docs.py README.md docs/cookbook.md

examples:
	PYTHONPATH=src $(PYTHON) -m repro.pipeline.cli examples

# where does solver time go? cProfile + per-stage wall-time counters
profile:
	$(PYTHON) scripts/profile_solver.py
