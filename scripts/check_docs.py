#!/usr/bin/env python3
"""Execute every fenced ``python`` code block in the given markdown files.

The docs-check job (``make docs-check``, CI) runs this over README.md and
docs/cookbook.md so documentation examples can never rot: a snippet that
stops working fails the build, exactly like a test.

Rules:

* only fences tagged ``python`` run; ``sh``/untagged fences are prose;
* a fence tagged ``python skip`` is display-only (for illustrative
  fragments that are deliberately not self-contained, e.g. pseudo-code
  or snippets with placeholder values) — use sparingly;
* all blocks of one file run in **one shared namespace, in order**, so a
  quickstart definition carries into later snippets, exactly as a reader
  pasting the file top to bottom would experience it.

Exit status: 0 when every block ran, 1 on the first failure (the failing
file, line and traceback are printed).
"""

from __future__ import annotations

import os
import sys
import time
from typing import List, Tuple

#: the in-tree package wins, as it does for the test suite
ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))


def extract_blocks(text: str) -> List[Tuple[int, str, str]]:
    """``(first line number, fence info string, code)`` per fenced block."""
    blocks: List[Tuple[int, str, str]] = []
    info = None
    start = 0
    code: List[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if info is None:
            if stripped.startswith("```") and stripped != "```":
                info = stripped[3:].strip()
                start = number + 1
                code = []
        elif stripped == "```":
            blocks.append((start, info, "\n".join(code)))
            info = None
        else:
            code.append(line)
    if info is not None:
        raise SystemExit(f"unterminated ``` fence starting near line {start}")
    return blocks


def run_file(path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    namespace: dict = {"__name__": f"docs-check:{path}"}
    ran = skipped = 0
    for lineno, info, code in extract_blocks(text):
        words = info.split()
        if not words or words[0] != "python":
            continue
        if "skip" in words[1:]:
            skipped += 1
            continue
        started = time.perf_counter()
        try:
            exec(compile(code, f"{path}:{lineno}", "exec"), namespace)
        except Exception:
            import traceback

            print(f"FAIL {path}:{lineno}")
            print("----- block -----")
            print(code)
            print("----- error -----")
            traceback.print_exc()
            raise SystemExit(1)
        ran += 1
        print(f"ok   {path}:{lineno} ({time.perf_counter() - started:.2f}s)")
    if ran == 0:
        # a checked file with nothing to run means the fences were
        # mistagged (```py, untagged) or all skip-marked — exactly the
        # silent rot this job exists to prevent
        raise SystemExit(
            f"{path}: no executable python blocks found "
            f"({skipped} skip-marked) — docs-check would be a no-op"
        )
    print(f"{path}: {ran} blocks executed, {skipped} skip-marked")
    return ran


def main(argv: List[str]) -> int:
    paths = argv or ["README.md", os.path.join("docs", "cookbook.md")]
    total = 0
    for path in paths:
        total += run_file(path)
    print(f"docs-check: {total} python blocks green")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
