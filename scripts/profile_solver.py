#!/usr/bin/env python3
"""Profile the staged solver on a paper test and print where time goes.

Runs one simulation under ``cProfile`` plus the enumerator's own
per-stage wall-time counters (``EnumerationStats.stage_seconds``), so a
perf regression can be localised in seconds: is it a pruning stage, the
cat-model kernels, or the enumeration scaffolding?

Usage::

    python scripts/profile_solver.py [test] [model] [--top N]

``test`` is a repro.papertests factory name (default ``fig11_lb3``),
``model`` a cat model name (default ``rc11``).  ``make profile`` runs
the default configuration.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
import time

#: the in-tree package wins, as it does for the test suite
ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("test", nargs="?", default="fig11_lb3",
                        help="repro.papertests factory name")
    parser.add_argument("model", nargs="?", default="rc11",
                        help="cat model name")
    parser.add_argument("--top", type=int, default=20,
                        help="rows of the cProfile table to print")
    args = parser.parse_args()

    from repro import papertests
    from repro.herd import simulate_c

    try:
        factory = getattr(papertests, args.test)
    except AttributeError:
        names = sorted(
            n for n in dir(papertests)
            if n.startswith("fig") and callable(getattr(papertests, n))
        )
        print(f"unknown test {args.test!r}; available: {', '.join(names)}",
              file=sys.stderr)
        return 1
    litmus = factory()

    # warm-up run outside the profile: model parsing/compilation caches
    simulate_c(litmus, args.model)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = simulate_c(litmus, args.model)
    profiler.disable()
    wall = time.perf_counter() - start

    stats = result.stats
    print(f"== {args.test} under {args.model}: "
          f"{len(result.outcomes)} outcomes, "
          f"{stats.candidates} candidates, {wall*1000:.1f} ms ==")
    print("\n-- per-stage wall time (EnumerationStats.stage_seconds) --")
    total_staged = sum(stats.stage_seconds.values())
    for name, seconds in sorted(
        stats.stage_seconds.items(), key=lambda kv: -kv[1]
    ):
        share = 100.0 * seconds / total_staged if total_staged else 0.0
        print(f"  {name:<20} {seconds*1000:9.2f} ms  {share:5.1f}%")
    print(f"  {'(stages total)':<20} {total_staged*1000:9.2f} ms")

    print(f"\n-- cProfile, top {args.top} by cumulative time --")
    table = pstats.Stats(profiler, stream=sys.stdout)
    table.strip_dirs().sort_stats("cumulative").print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
