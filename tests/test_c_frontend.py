"""Tests for the C litmus front-end: parser, printer, symbolic semantics."""

import pytest

from repro.core.errors import ParseError, SimulationError
from repro.core.events import EventKind, MemoryOrder
from repro.lang import parse_c_litmus, print_c_litmus
from repro.lang.ast import (
    AtomicLoad,
    AtomicRMW,
    AtomicStore,
    CLitmus,
    CThread,
    Decl,
    Fence,
    If,
    While,
)
from repro.lang.semantics import elaborate
from repro.papertests import FIG1_SOURCE, FIG7_SOURCE, fig1_exchange, fig7_lb


class TestParser:
    def test_header_name(self):
        litmus = parse_c_litmus("C myname\n{ *x = 0; }\nvoid P0(atomic_int* x) { }\nexists (x=0)")
        assert litmus.name == "myname"

    def test_init_state(self):
        litmus = fig7_lb()
        assert litmus.init == {"x": 0, "y": 0}

    def test_defines_expand(self):
        litmus = fig7_lb()
        load = litmus.threads[0].body[0]
        assert isinstance(load, Decl)
        assert isinstance(load.expr, AtomicLoad)
        assert load.expr.order is MemoryOrder.RLX

    def test_thread_params_and_atomic_types(self):
        litmus = fig7_lb()
        assert litmus.threads[0].params == ("y", "x")
        assert set(litmus.threads[0].atomic_params) == {"x", "y"}

    def test_exchange_parses_as_rmw(self):
        litmus = fig1_exchange()
        stmt = litmus.threads[1].body[0]
        assert isinstance(stmt.expr, AtomicRMW)
        assert stmt.expr.kind == "xchg"
        assert stmt.expr.order is MemoryOrder.REL

    def test_fetch_ops_parse(self):
        for op in ("add", "sub", "or", "and", "xor"):
            source = f"""
C t
{{ *x = 0; }}
void P0(atomic_int* x) {{
  int r0 = atomic_fetch_{op}_explicit(x, 1, memory_order_relaxed);
}}
exists (P0:r0=0)
"""
            litmus = parse_c_litmus(source)
            rmw = litmus.threads[0].body[0].expr
            assert isinstance(rmw, AtomicRMW) and rmw.kind == op

    def test_condition_ast(self):
        litmus = fig1_exchange()
        assert str(litmus.condition) == "exists (P1:r0=0 /\\ y=2)"
        assert litmus.condition.observables() == frozenset({"P1:r0", "y"})

    def test_if_else_parses(self):
        source = """
C t
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0 == 1) { atomic_store_explicit(y, 1, memory_order_relaxed); }
  else { atomic_store_explicit(y, 1, memory_order_relaxed); }
}
exists (y=1)
"""
        litmus = parse_c_litmus(source)
        branch = litmus.threads[0].body[1]
        assert isinstance(branch, If)
        assert branch.else_body

    def test_while_parses(self):
        source = """
C t
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = 0;
  while (r0 == 0) { r0 = atomic_load_explicit(x, memory_order_relaxed); }
}
exists (P0:r0=1)
"""
        litmus = parse_c_litmus(source)
        assert isinstance(litmus.threads[0].body[1], While)

    def test_128bit_param_width(self):
        source = """
C t
{ *x = 0; }
void P0(atomic_int128* x) {
  __int128 r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P0:r0=0)
"""
        litmus = parse_c_litmus(source)
        assert litmus.width_of("x") == 128

    def test_const_location(self):
        source = """
C t
{ const *c = 5; }
void P0(atomic_int* c) {
  int r0 = atomic_load_explicit(c, memory_order_relaxed);
}
exists (P0:r0=5)
"""
        litmus = parse_c_litmus(source)
        assert litmus.const_locations == ("c",)

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_c_litmus("this is not a litmus test")

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_c_litmus(FIG7_SOURCE + "\nextra tokens here")


class TestPrinter:
    def test_roundtrip_fig7(self):
        litmus = fig7_lb()
        printed = print_c_litmus(litmus)
        reparsed = parse_c_litmus(printed, litmus.name)
        assert reparsed.init == litmus.init
        assert len(reparsed.threads) == len(litmus.threads)
        assert str(reparsed.condition) == str(litmus.condition)

    def test_roundtrip_fig1(self):
        litmus = fig1_exchange()
        printed = print_c_litmus(litmus)
        reparsed = parse_c_litmus(printed, litmus.name)
        assert str(reparsed.condition) == str(litmus.condition)


class TestSemantics:
    def test_straight_line_single_path(self):
        programs = elaborate(fig7_lb())
        assert all(len(p.paths) == 1 for p in programs)

    def test_events_in_program_order(self):
        programs = elaborate(fig7_lb())
        path = programs[0].paths[0]
        kinds = [t.kind for t in path.templates]
        # relaxed fence compiles to nothing at source level? no: the C
        # semantics keeps the fence event (the model ignores RLX fences)
        assert kinds[0] is EventKind.READ
        assert kinds[-1] is EventKind.WRITE

    def test_rmw_produces_read_write_pair(self):
        programs = elaborate(fig1_exchange())
        path = programs[1].paths[0]
        rmw_writes = [t for t in path.templates if t.rmw_with_prev]
        assert len(rmw_writes) == 1
        reads = [t for t in path.templates if t.kind is EventKind.READ]
        assert any("RMW-R" in t.tags for t in reads)

    def test_if_forks_paths(self):
        source = """
C t
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0 == 1) { atomic_store_explicit(y, 1, memory_order_relaxed); }
}
exists (y=1)
"""
        programs = elaborate(parse_c_litmus(source))
        assert len(programs[0].paths) == 2

    def test_ctrl_deps_recorded_after_branch(self):
        source = """
C t
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0 == 1) { atomic_store_explicit(y, 1, memory_order_relaxed); }
}
exists (y=1)
"""
        programs = elaborate(parse_c_litmus(source))
        taken = [p for p in programs[0].paths if len(p.templates) == 2][0]
        store = taken.templates[1]
        assert store.ctrl_deps  # control-dependent on the load

    def test_while_unrolls_to_budget(self):
        source = """
C t
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = 0;
  while (r0 == 0) { r0 = atomic_load_explicit(x, memory_order_relaxed); }
}
exists (P0:r0=1)
"""
        programs = elaborate(parse_c_litmus(source), unroll=3)
        # paths: exit after 1, 2, or 3 reads (the still-looping path drops)
        assert 1 <= len(programs[0].paths) <= 4

    def test_undefined_local_raises(self):
        source = """
C t
{ *x = 0; }
void P0(atomic_int* x) {
  atomic_store_explicit(x, r9, memory_order_relaxed);
}
exists (x=0)
"""
        with pytest.raises(SimulationError):
            elaborate(parse_c_litmus(source))

    def test_finals_capture_locals(self):
        programs = elaborate(fig7_lb())
        assert "r0" in programs[0].paths[0].finals
