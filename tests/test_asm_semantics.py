"""Tests for the assembly symbolic semantics and AsmLitmus model."""

import pytest

from repro.asm import AsmLitmus, AsmThread, elaborate_asm, get_isa, total_instructions
from repro.core.errors import MappingError, SimulationError
from repro.core.events import EventKind
from repro.core.litmus import And, Condition, LocEq, RegEq, TrueProp
from repro.herd import simulate_asm

A64 = get_isa("aarch64")


def thread(name, lines, observed=None, addr_env=None):
    return AsmThread(
        name=name,
        instructions=tuple(A64.parse_line(l) for l in lines),
        observed=observed or {},
        addr_env=addr_env or {"x0": "x", "x1": "y"},
    )


def litmus(threads, condition=None, init=None, **kwargs):
    return AsmLitmus(
        name="t",
        init=init or {"x": 0, "y": 0},
        condition=condition or Condition("exists", TrueProp()),
        arch="aarch64",
        threads=tuple(threads),
        **kwargs,
    )


class TestBasics:
    def test_load_store_events(self):
        t = thread("P0", ["ldr w12, [x0]", "mov w13, #1", "str w13, [x1]"],
                   observed={"w12": "r0"})
        program = elaborate_asm(litmus([t]))[0]
        path = program.paths[0]
        assert [tpl.kind for tpl in path.templates] == [EventKind.READ, EventKind.WRITE]
        assert path.finals["r0"] is not None

    def test_acquire_release_tags(self):
        t = thread("P0", ["ldar w12, [x0]", "stlr w12, [x1]"])
        path = elaborate_asm(litmus([t]))[0].paths[0]
        assert "A" in path.templates[0].tags
        assert "L" in path.templates[1].tags

    def test_ldapr_gets_q_tag(self):
        t = thread("P0", ["ldapr w12, [x0]"])
        path = elaborate_asm(litmus([t]))[0].paths[0]
        assert "Q" in path.templates[0].tags
        assert "A" not in path.templates[0].tags

    def test_fence_tags(self):
        t = thread("P0", ["dmb ishld"])
        path = elaborate_asm(litmus([t]))[0].paths[0]
        assert path.templates[0].kind is EventKind.FENCE
        assert path.templates[0].tags == frozenset({"DMB.LD"})

    def test_zero_register_reads_zero(self):
        t = thread("P0", ["str wzr, [x0]"])
        path = elaborate_asm(litmus([t]))[0].paths[0]
        assert path.templates[0].value_expr.eval({}) == 0

    def test_movaddr_sets_address(self):
        t = AsmThread("P0", tuple(A64.parse_line(l) for l in
                                  ["adrp x8, x", "mov w12, #7", "str w12, [x8]"]),
                      addr_env={})
        lit = litmus([t], init={"x": 0})
        result = simulate_asm(lit)
        assert all(o.as_dict()["x"] == 7 for o in result.outcomes)

    def test_unknown_address_register_raises(self):
        t = AsmThread("P0", (A64.parse_line("ldr w12, [x5]"),), addr_env={})
        with pytest.raises(SimulationError, match="no\\s+known address"):
            elaborate_asm(litmus([t]))

    def test_unknown_branch_label_raises(self):
        t = thread("P0", ["b .Lnowhere"])
        with pytest.raises(SimulationError, match="unknown label"):
            elaborate_asm(litmus([t]))

    def test_duplicate_label_raises(self):
        t = thread("P0", [".L0:", ".L0:"])
        with pytest.raises(SimulationError, match="duplicate label"):
            elaborate_asm(litmus([t]))


class TestControlFlow:
    def test_cbz_forks_paths(self):
        t = thread("P0", [
            "ldr w12, [x0]",
            "cbz w12, .Lskip",
            "mov w13, #1",
            "str w13, [x1]",
            ".Lskip:",
        ])
        program = elaborate_asm(litmus([t]))[0]
        assert len(program.paths) == 2

    def test_ctrl_dependency_recorded(self):
        t = thread("P0", [
            "ldr w12, [x0]",
            "cbz w12, .Lskip",
            "mov w13, #1",
            "str w13, [x1]",
            ".Lskip:",
        ])
        program = elaborate_asm(litmus([t]))[0]
        store_paths = [p for p in program.paths if len(p.templates) == 2]
        assert store_paths and store_paths[0].templates[1].ctrl_deps

    def test_cmp_bcond(self):
        t = thread("P0", [
            "ldr w12, [x0]",
            "cmp w12, #1",
            "b.ne .Lout",
            "mov w13, #1",
            "str w13, [x1]",
            ".Lout:",
        ])
        program = elaborate_asm(litmus([t]))[0]
        assert len(program.paths) == 2

    def test_constant_branch_no_fork(self):
        t = thread("P0", [
            "mov w12, #0",
            "cbz w12, .Ltaken",
            "mov w13, #1",
            "str w13, [x1]",
            ".Ltaken:",
        ])
        program = elaborate_asm(litmus([t]))[0]
        assert len(program.paths) == 1
        assert not program.paths[0].templates  # store skipped

    def test_infinite_loop_drops_path(self):
        t = thread("P0", [".Lspin:", "b .Lspin"])
        with pytest.raises(SimulationError, match="no path finished"):
            elaborate_asm(litmus([t]))

    def test_backward_branch_bounded(self):
        # a countdown loop: executes exactly 3 iterations then exits
        t = thread("P0", [
            "mov w12, #3",
            ".Lloop:",
            "sub w12, w12, #1",
            "cbnz w12, .Lloop",
            "mov w13, #1",
            "str w13, [x1]",
        ])
        program = elaborate_asm(litmus([t]))[0]
        assert len(program.paths) == 1
        assert len(program.paths[0].templates) == 1


class TestRmwAndExclusives:
    def test_amo_read_write_pair(self):
        t = thread("P0", ["mov w12, #1", "ldadd w12, w13, [x1]"])
        path = elaborate_asm(litmus([t]))[0].paths[0]
        read, write = path.templates
        assert "RMW-R" in read.tags and write.rmw_with_prev

    def test_st_form_sets_noret(self):
        t = thread("P0", ["mov w12, #1", "stadd w12, [x1]"])
        path = elaborate_asm(litmus([t]))[0].paths[0]
        assert "NORET" in path.templates[0].tags

    def test_amo_with_destination_not_noret(self):
        t = thread("P0", ["mov w12, #1", "ldadd w12, w13, [x1]"])
        path = elaborate_asm(litmus([t]))[0].paths[0]
        assert "NORET" not in path.templates[0].tags

    def test_swap_semantics(self):
        t = thread("P0", ["mov w12, #5", "swp w12, w13, [x1]"],
                   observed={"w13": "r0"})
        lit = litmus([t], init={"y": 3, "x": 0})
        result = simulate_asm(lit)
        outcome = next(iter(result.outcomes)).as_dict()
        assert outcome["y"] == 5 and outcome["P0:r0"] == 3

    def test_exclusive_pair_links_rmw(self):
        t = thread("P0", [
            ".Lretry:",
            "ldxr w12, [x1]",
            "add w13, w12, #1",
            "stxr w14, w13, [x1]",
            "cbnz w14, .Lretry",
        ])
        path = elaborate_asm(litmus([t]))[0].paths[0]
        stx = path.templates[-1]
        assert stx.rmw_read_pos == 0

    def test_exclusive_loop_runs_once(self):
        """Success-only modelling: the retry branch is never taken."""
        t = thread("P0", [
            ".Lretry:",
            "ldxr w12, [x1]",
            "add w13, w12, #1",
            "stxr w14, w13, [x1]",
            "cbnz w14, .Lretry",
        ])
        program = elaborate_asm(litmus([t]))[0]
        assert len(program.paths) == 1
        reads = [t for t in program.paths[0].templates if t.kind is EventKind.READ]
        assert len(reads) == 1

    def test_stx_without_ldx_raises(self):
        t = thread("P0", ["mov w12, #1", "stxr w14, w12, [x1]"])
        with pytest.raises(SimulationError, match="without a\\s+matching"):
            elaborate_asm(litmus([t]))

    def test_atomicity_enforced_by_model(self):
        """Two concurrent LL/SC increments always sum."""
        body = [
            ".Lretry:",
            "ldxr w12, [x0]",
            "add w13, w12, #1",
            "stxr w14, w13, [x0]",
            "cbnz w14, .Lretry",
        ]
        t0 = thread("P0", body)
        t1 = thread("P1", body)
        lit = litmus([t0, t1], init={"x": 0})
        result = simulate_asm(lit)
        finals = {o.as_dict()["x"] for o in result.outcomes}
        assert finals == {2}


class TestPairsAndRegions:
    def test_128bit_pair_roundtrip(self):
        t0 = AsmThread(
            "P0",
            tuple(A64.parse_line(l) for l in [
                "mov x12, #1", "mov x13, #2", "stp x12, x13, [x0]",
            ]),
            addr_env={"x0": "x"},
        )
        t1 = AsmThread(
            "P1",
            tuple(A64.parse_line(l) for l in ["ldp x12, x13, [x0]"]),
            observed={"x12": "lo", "x13": "hi"},
            addr_env={"x0": "x"},
        )
        lit = litmus([t0, t1], init={"x": 0}, widths={"x": 128})
        result = simulate_asm(lit)
        outcomes = {(o.as_dict()["P1:lo"], o.as_dict()["P1:hi"])
                    for o in result.outcomes}
        assert outcomes == {(0, 0), (1, 2)}  # single-copy atomic: no tearing

    def test_const_tagging(self):
        t = AsmThread("P0", (A64.parse_line("ldr w12, [x0]"),),
                      addr_env={"x0": "c"})
        lit = litmus([t], init={"c": 5}, const_locations=("c",))
        path = elaborate_asm(lit)[0].paths[0]
        assert "CONST" in path.templates[0].tags

    def test_region_offsets_name_distinct_locations(self):
        t = AsmThread(
            "P0",
            tuple(A64.parse_line(l) for l in [
                "mov w12, #1", "str w12, [sp]", "str w12, [sp, #8]",
            ]),
            addr_env={"sp": "stack_P0"},
        )
        lit = litmus([t], init={"x": 0}, regions={"stack_P0": 16})
        path = elaborate_asm(lit)[0].paths[0]
        locs = [tpl.loc for tpl in path.templates]
        assert locs == ["stack_P0", "stack_P0+8"]

    def test_region_overflow_raises(self):
        t = AsmThread("P0", (A64.parse_line("str wzr, [sp, #64]"),),
                      addr_env={"sp": "stack_P0"})
        lit = litmus([t], init={}, regions={"stack_P0": 16})
        with pytest.raises(SimulationError, match="outside region"):
            elaborate_asm(lit)

    def test_got_load_tracks_address(self):
        t = AsmThread(
            "P0",
            tuple(A64.parse_line(l) for l in [
                "adrp x8, got_x", "ldr x8, [x8]", "mov w12, #1", "str w12, [x8]",
            ]),
            addr_env={},
        )
        lit = litmus(
            [t],
            init={"x": 0, "got_x": 0x11000},
            widths={"got_x": 64},
            layout={"x": 0x11000, "got_x": 0x13000},
            addr_locations={"got_x": "x"},
        )
        result = simulate_asm(lit)
        assert all(o.as_dict()["x"] == 1 for o in result.outcomes)


class TestLitmusModel:
    def test_symbol_address_bridge(self):
        lit = litmus([], init={"x": 0}, layout={"x": 0x11000},
                     widths={"x": 128})
        assert lit.address_of("x") == 0x11000
        assert lit.symbol_at(0x11008) == ("x", 8)
        with pytest.raises(MappingError):
            lit.symbol_at(0xdead)
        with pytest.raises(MappingError):
            lit.address_of("nope")

    def test_private_classification(self):
        lit = litmus([], init={"x": 0, "got_x": 1},
                     addr_locations={"got_x": "x"},
                     regions={"stack_P0": 16})
        assert lit.is_private("got_x")
        assert lit.is_private("stack_P0+8")
        assert not lit.is_private("x")
        assert lit.shared_symbols() == ("x",)

    def test_total_instructions(self):
        t = thread("P0", ["nop", "ret"])
        assert total_instructions(litmus([t])) == 2

    def test_pretty_renders(self):
        t = thread("P0", ["ldr w12, [x0]"])
        text = litmus([t]).pretty()
        assert "P0:" in text and "ldr" in text
