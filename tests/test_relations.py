"""Unit and property tests for the relation algebra (repro.core.relations)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relations import Relation, RelationBuilder

pairs_strategy = st.sets(
    st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=20
)

chain_strategy = st.lists(
    st.integers(0, 15), min_size=0, max_size=8, unique=True
)


def rel(*pairs):
    return Relation(pairs)


class TestConstruction:
    def test_empty_is_falsy(self):
        assert not Relation.empty()
        assert len(Relation.empty()) == 0

    def test_empty_is_singleton(self):
        assert Relation.empty() is Relation.empty()

    def test_identity(self):
        assert Relation.identity([1, 2]).pairs == frozenset({(1, 1), (2, 2)})

    def test_cartesian(self):
        r = Relation.cartesian([1, 2], [3])
        assert r.pairs == frozenset({(1, 3), (2, 3)})

    def test_from_order_is_transitive(self):
        r = Relation.from_order([1, 2, 3])
        assert (1, 3) in r
        assert len(r) == 3

    def test_from_successive_is_adjacent_only(self):
        r = Relation.from_successive([1, 2, 3])
        assert (1, 3) not in r
        assert len(r) == 2

    def test_duplicate_pairs_collapse(self):
        assert len(Relation([(1, 2), (1, 2)])) == 1


class TestOperators:
    def test_union(self):
        assert (rel((1, 2)) | rel((2, 3))).pairs == frozenset({(1, 2), (2, 3)})

    def test_intersection(self):
        assert (rel((1, 2), (2, 3)) & rel((2, 3))).pairs == frozenset({(2, 3)})

    def test_difference(self):
        assert (rel((1, 2), (2, 3)) - rel((2, 3))).pairs == frozenset({(1, 2)})

    def test_compose(self):
        assert rel((1, 2)).compose(rel((2, 3))).pairs == frozenset({(1, 3)})

    def test_compose_no_match(self):
        assert rel((1, 2)).compose(rel((3, 4))).is_empty()

    def test_seq_chains(self):
        r = rel((1, 2)).seq(rel((2, 3)), rel((3, 4)))
        assert r.pairs == frozenset({(1, 4)})

    def test_inverse(self):
        assert rel((1, 2)).inverse().pairs == frozenset({(2, 1)})

    def test_transitive_closure(self):
        r = rel((1, 2), (2, 3)).transitive_closure()
        assert (1, 3) in r

    def test_reflexive_transitive_closure_adds_identity(self):
        r = rel((1, 2)).reflexive_transitive_closure([1, 2, 3])
        assert (3, 3) in r and (1, 2) in r and (1, 1) in r

    def test_optional(self):
        r = rel((1, 2)).optional([1, 2])
        assert (1, 1) in r and (1, 2) in r

    def test_restrict(self):
        r = rel((1, 2), (2, 3)).restrict([1, 2])
        assert r.pairs == frozenset({(1, 2)})

    def test_restrict_domain_range(self):
        r = rel((1, 2), (2, 3))
        assert r.restrict_domain([1]).pairs == frozenset({(1, 2)})
        assert r.restrict_range([3]).pairs == frozenset({(2, 3)})

    def test_domain_codomain_field(self):
        r = rel((1, 2), (2, 3))
        assert r.domain() == frozenset({1, 2})
        assert r.codomain() == frozenset({2, 3})
        assert r.field() == frozenset({1, 2, 3})

    def test_filter(self):
        r = rel((1, 2), (2, 1)).filter(lambda a, b: a < b)
        assert r.pairs == frozenset({(1, 2)})


class TestChecks:
    def test_acyclic_empty(self):
        assert Relation.empty().is_acyclic()

    def test_acyclic_chain(self):
        assert rel((1, 2), (2, 3)).is_acyclic()

    def test_cycle_detected(self):
        assert not rel((1, 2), (2, 1)).is_acyclic()

    def test_self_loop_is_cycle(self):
        assert not rel((1, 1)).is_acyclic()

    def test_irreflexive(self):
        assert rel((1, 2)).is_irreflexive()
        assert not rel((1, 1)).is_irreflexive()

    def test_is_total_over(self):
        assert rel((1, 2), (1, 3), (2, 3)).is_total_over([1, 2, 3])
        assert not rel((1, 2)).is_total_over([1, 2, 3])

    def test_topological_order(self):
        order = rel((1, 2), (2, 3)).topological_order()
        assert order.index(1) < order.index(2) < order.index(3)

    def test_topological_order_cycle_raises(self):
        with pytest.raises(ValueError):
            rel((1, 2), (2, 1)).topological_order()


class TestProperties:
    @given(pairs_strategy)
    def test_closure_is_idempotent(self, pairs):
        r = Relation(pairs).transitive_closure()
        assert r.transitive_closure() == r

    @given(pairs_strategy)
    def test_closure_contains_original(self, pairs):
        r = Relation(pairs)
        assert r.pairs <= r.transitive_closure().pairs

    @given(pairs_strategy)
    def test_closure_is_transitive(self, pairs):
        closure = Relation(pairs).transitive_closure()
        for a, b in closure:
            for c, d in closure:
                if b == c:
                    assert (a, d) in closure

    @given(pairs_strategy, pairs_strategy)
    def test_union_commutes(self, p1, p2):
        assert Relation(p1) | Relation(p2) == Relation(p2) | Relation(p1)

    @given(pairs_strategy, pairs_strategy)
    def test_intersection_subset_of_union(self, p1, p2):
        r1, r2 = Relation(p1), Relation(p2)
        assert (r1 & r2).pairs <= (r1 | r2).pairs

    @given(pairs_strategy)
    def test_double_inverse_is_identity(self, pairs):
        r = Relation(pairs)
        assert r.inverse().inverse() == r

    @given(pairs_strategy, pairs_strategy)
    def test_compose_inverse_antidistributes(self, p1, p2):
        r1, r2 = Relation(p1), Relation(p2)
        assert r1.compose(r2).inverse() == r2.inverse().compose(r1.inverse())

    @given(pairs_strategy)
    def test_acyclic_iff_topological_order_exists(self, pairs):
        r = Relation(pairs)
        if r.is_acyclic():
            order = r.topological_order()
            position = {n: i for i, n in enumerate(order)}
            assert all(position[a] < position[b] for a, b in r)
        else:
            with pytest.raises(ValueError):
                r.topological_order()

    @given(pairs_strategy)
    def test_cycle_implies_closure_reflexive_somewhere(self, pairs):
        r = Relation(pairs)
        closure = r.transitive_closure()
        assert r.is_acyclic() == closure.is_irreflexive()

    @given(pairs_strategy)
    def test_dfs_acyclicity_agrees_with_closure_based(self, pairs):
        """The DFS is_acyclic must agree with the definitional check:
        no (a, a) in the transitive closure."""
        r = Relation(pairs)
        closure_based = all(
            (a, a) not in r.transitive_closure() for a in r.field()
        )
        assert r.is_acyclic() == closure_based

    @given(pairs_strategy, pairs_strategy, pairs_strategy)
    def test_compose_is_associative(self, p1, p2, p3):
        r1, r2, r3 = Relation(p1), Relation(p2), Relation(p3)
        assert r1.compose(r2).compose(r3) == r1.compose(r2.compose(r3))

    @given(pairs_strategy)
    def test_identity_is_compose_neutral(self, pairs):
        r = Relation(pairs)
        ident = Relation.identity(range(8))
        assert r.compose(ident) == r
        assert ident.compose(r) == r

    @given(pairs_strategy, pairs_strategy)
    def test_compose_distributes_over_union(self, p1, p2):
        r1, r2 = Relation(p1), Relation(p2)
        other = Relation([(i, (i + 1) % 8) for i in range(8)])
        assert (r1 | r2).compose(other) == r1.compose(other) | r2.compose(other)

    @given(chain_strategy)
    def test_from_order_is_closure_of_from_successive(self, chain):
        assert (
            Relation.from_successive(chain).transitive_closure()
            == Relation.from_order(chain)
        )

    @given(chain_strategy)
    def test_from_successive_subset_of_from_order(self, chain):
        assert (
            Relation.from_successive(chain).pairs
            <= Relation.from_order(chain).pairs
        )

    @given(chain_strategy)
    def test_from_order_total_and_acyclic(self, chain):
        r = Relation.from_order(chain)
        assert r.is_acyclic()
        assert r.is_total_over(chain)


class TestExtend:
    def test_extend_adds_pairs(self):
        r = rel((1, 2)).extend([(2, 3)])
        assert r.pairs == frozenset({(1, 2), (2, 3)})

    def test_extend_noop_returns_self(self):
        r = rel((1, 2))
        assert r.extend([(1, 2)]) is r
        assert r.extend([]) is r

    @given(pairs_strategy, pairs_strategy)
    def test_extend_equals_union(self, p1, p2):
        assert Relation(p1).extend(p2) == Relation(p1) | Relation(p2)

    @given(pairs_strategy, pairs_strategy)
    def test_extend_reuses_index_correctly(self, p1, p2):
        """Growing via extend (with the successor index pre-warmed) must
        behave identically to a fresh relation in index-consuming ops."""
        base = Relation(p1)
        base.successors()  # warm the index so extend donates it
        grown = base.extend(p2)
        fresh = Relation(set(p1) | set(p2))
        probe = Relation([(i, (i + 3) % 8) for i in range(8)])
        assert grown.compose(probe) == fresh.compose(probe)
        assert grown.is_acyclic() == fresh.is_acyclic()

    @given(pairs_strategy)
    def test_pair_by_pair_growth(self, pairs):
        r = Relation.empty()
        for pair in pairs:
            r = r.extend([pair])
        assert r == Relation(pairs)


class TestRelationBuilder:
    def test_add_and_freeze(self):
        b = RelationBuilder()
        assert b.add(1, 2)
        assert not b.add(1, 2)  # duplicate
        assert b.add(2, 3)
        assert b.freeze() == rel((1, 2), (2, 3))

    def test_add_chain_transitive(self):
        b = RelationBuilder()
        b.add_chain([1, 2, 3])
        assert b.freeze() == Relation.from_order([1, 2, 3])

    def test_add_chain_successive(self):
        b = RelationBuilder()
        b.add_chain([1, 2, 3], transitive=False)
        assert b.freeze() == Relation.from_successive([1, 2, 3])

    def test_has_path(self):
        b = RelationBuilder([(1, 2), (2, 3)])
        assert b.has_path(1, 3)
        assert not b.has_path(3, 1)
        assert b.has_path(1, 1)  # trivially reachable

    def test_would_close_cycle(self):
        b = RelationBuilder([(1, 2), (2, 3)])
        assert b.would_close_cycle(3, 1)
        assert b.would_close_cycle(4, 4)  # self-loop
        assert not b.would_close_cycle(1, 3)

    @given(pairs_strategy)
    def test_freeze_matches_direct_construction(self, pairs):
        b = RelationBuilder(pairs)
        frozen = b.freeze()
        direct = Relation(pairs)
        assert frozen == direct
        probe = Relation([(i, (i + 1) % 8) for i in range(8)])
        assert frozen.compose(probe) == direct.compose(probe)
        assert frozen.is_acyclic() == direct.is_acyclic()
