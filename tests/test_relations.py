"""Unit and property tests for the relation algebra (repro.core.relations)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relations import Relation, RelationBuilder

pairs_strategy = st.sets(
    st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=20
)

chain_strategy = st.lists(
    st.integers(0, 15), min_size=0, max_size=8, unique=True
)


def rel(*pairs):
    return Relation(pairs)


class TestConstruction:
    def test_empty_is_falsy(self):
        assert not Relation.empty()
        assert len(Relation.empty()) == 0

    def test_empty_is_singleton(self):
        assert Relation.empty() is Relation.empty()

    def test_identity(self):
        assert Relation.identity([1, 2]).pairs == frozenset({(1, 1), (2, 2)})

    def test_cartesian(self):
        r = Relation.cartesian([1, 2], [3])
        assert r.pairs == frozenset({(1, 3), (2, 3)})

    def test_from_order_is_transitive(self):
        r = Relation.from_order([1, 2, 3])
        assert (1, 3) in r
        assert len(r) == 3

    def test_from_successive_is_adjacent_only(self):
        r = Relation.from_successive([1, 2, 3])
        assert (1, 3) not in r
        assert len(r) == 2

    def test_duplicate_pairs_collapse(self):
        assert len(Relation([(1, 2), (1, 2)])) == 1


class TestOperators:
    def test_union(self):
        assert (rel((1, 2)) | rel((2, 3))).pairs == frozenset({(1, 2), (2, 3)})

    def test_intersection(self):
        assert (rel((1, 2), (2, 3)) & rel((2, 3))).pairs == frozenset({(2, 3)})

    def test_difference(self):
        assert (rel((1, 2), (2, 3)) - rel((2, 3))).pairs == frozenset({(1, 2)})

    def test_compose(self):
        assert rel((1, 2)).compose(rel((2, 3))).pairs == frozenset({(1, 3)})

    def test_compose_no_match(self):
        assert rel((1, 2)).compose(rel((3, 4))).is_empty()

    def test_seq_chains(self):
        r = rel((1, 2)).seq(rel((2, 3)), rel((3, 4)))
        assert r.pairs == frozenset({(1, 4)})

    def test_inverse(self):
        assert rel((1, 2)).inverse().pairs == frozenset({(2, 1)})

    def test_transitive_closure(self):
        r = rel((1, 2), (2, 3)).transitive_closure()
        assert (1, 3) in r

    def test_reflexive_transitive_closure_adds_identity(self):
        r = rel((1, 2)).reflexive_transitive_closure([1, 2, 3])
        assert (3, 3) in r and (1, 2) in r and (1, 1) in r

    def test_optional(self):
        r = rel((1, 2)).optional([1, 2])
        assert (1, 1) in r and (1, 2) in r

    def test_restrict(self):
        r = rel((1, 2), (2, 3)).restrict([1, 2])
        assert r.pairs == frozenset({(1, 2)})

    def test_restrict_domain_range(self):
        r = rel((1, 2), (2, 3))
        assert r.restrict_domain([1]).pairs == frozenset({(1, 2)})
        assert r.restrict_range([3]).pairs == frozenset({(2, 3)})

    def test_domain_codomain_field(self):
        r = rel((1, 2), (2, 3))
        assert r.domain() == frozenset({1, 2})
        assert r.codomain() == frozenset({2, 3})
        assert r.field() == frozenset({1, 2, 3})

    def test_filter(self):
        r = rel((1, 2), (2, 1)).filter(lambda a, b: a < b)
        assert r.pairs == frozenset({(1, 2)})


class TestChecks:
    def test_acyclic_empty(self):
        assert Relation.empty().is_acyclic()

    def test_acyclic_chain(self):
        assert rel((1, 2), (2, 3)).is_acyclic()

    def test_cycle_detected(self):
        assert not rel((1, 2), (2, 1)).is_acyclic()

    def test_self_loop_is_cycle(self):
        assert not rel((1, 1)).is_acyclic()

    def test_irreflexive(self):
        assert rel((1, 2)).is_irreflexive()
        assert not rel((1, 1)).is_irreflexive()

    def test_is_total_over(self):
        assert rel((1, 2), (1, 3), (2, 3)).is_total_over([1, 2, 3])
        assert not rel((1, 2)).is_total_over([1, 2, 3])

    def test_topological_order(self):
        order = rel((1, 2), (2, 3)).topological_order()
        assert order.index(1) < order.index(2) < order.index(3)

    def test_topological_order_cycle_raises(self):
        with pytest.raises(ValueError):
            rel((1, 2), (2, 1)).topological_order()


class TestProperties:
    @given(pairs_strategy)
    def test_closure_is_idempotent(self, pairs):
        r = Relation(pairs).transitive_closure()
        assert r.transitive_closure() == r

    @given(pairs_strategy)
    def test_closure_contains_original(self, pairs):
        r = Relation(pairs)
        assert r.pairs <= r.transitive_closure().pairs

    @given(pairs_strategy)
    def test_closure_is_transitive(self, pairs):
        closure = Relation(pairs).transitive_closure()
        for a, b in closure:
            for c, d in closure:
                if b == c:
                    assert (a, d) in closure

    @given(pairs_strategy, pairs_strategy)
    def test_union_commutes(self, p1, p2):
        assert Relation(p1) | Relation(p2) == Relation(p2) | Relation(p1)

    @given(pairs_strategy, pairs_strategy)
    def test_intersection_subset_of_union(self, p1, p2):
        r1, r2 = Relation(p1), Relation(p2)
        assert (r1 & r2).pairs <= (r1 | r2).pairs

    @given(pairs_strategy)
    def test_double_inverse_is_identity(self, pairs):
        r = Relation(pairs)
        assert r.inverse().inverse() == r

    @given(pairs_strategy, pairs_strategy)
    def test_compose_inverse_antidistributes(self, p1, p2):
        r1, r2 = Relation(p1), Relation(p2)
        assert r1.compose(r2).inverse() == r2.inverse().compose(r1.inverse())

    @given(pairs_strategy)
    def test_acyclic_iff_topological_order_exists(self, pairs):
        r = Relation(pairs)
        if r.is_acyclic():
            order = r.topological_order()
            position = {n: i for i, n in enumerate(order)}
            assert all(position[a] < position[b] for a, b in r)
        else:
            with pytest.raises(ValueError):
                r.topological_order()

    @given(pairs_strategy)
    def test_cycle_implies_closure_reflexive_somewhere(self, pairs):
        r = Relation(pairs)
        closure = r.transitive_closure()
        assert r.is_acyclic() == closure.is_irreflexive()

    @given(pairs_strategy)
    def test_dfs_acyclicity_agrees_with_closure_based(self, pairs):
        """The DFS is_acyclic must agree with the definitional check:
        no (a, a) in the transitive closure."""
        r = Relation(pairs)
        closure_based = all(
            (a, a) not in r.transitive_closure() for a in r.field()
        )
        assert r.is_acyclic() == closure_based

    @given(pairs_strategy, pairs_strategy, pairs_strategy)
    def test_compose_is_associative(self, p1, p2, p3):
        r1, r2, r3 = Relation(p1), Relation(p2), Relation(p3)
        assert r1.compose(r2).compose(r3) == r1.compose(r2.compose(r3))

    @given(pairs_strategy)
    def test_identity_is_compose_neutral(self, pairs):
        r = Relation(pairs)
        ident = Relation.identity(range(8))
        assert r.compose(ident) == r
        assert ident.compose(r) == r

    @given(pairs_strategy, pairs_strategy)
    def test_compose_distributes_over_union(self, p1, p2):
        r1, r2 = Relation(p1), Relation(p2)
        other = Relation([(i, (i + 1) % 8) for i in range(8)])
        assert (r1 | r2).compose(other) == r1.compose(other) | r2.compose(other)

    @given(chain_strategy)
    def test_from_order_is_closure_of_from_successive(self, chain):
        assert (
            Relation.from_successive(chain).transitive_closure()
            == Relation.from_order(chain)
        )

    @given(chain_strategy)
    def test_from_successive_subset_of_from_order(self, chain):
        assert (
            Relation.from_successive(chain).pairs
            <= Relation.from_order(chain).pairs
        )

    @given(chain_strategy)
    def test_from_order_total_and_acyclic(self, chain):
        r = Relation.from_order(chain)
        assert r.is_acyclic()
        assert r.is_total_over(chain)


class TestExtend:
    def test_extend_adds_pairs(self):
        r = rel((1, 2)).extend([(2, 3)])
        assert r.pairs == frozenset({(1, 2), (2, 3)})

    def test_extend_noop_returns_self(self):
        r = rel((1, 2))
        assert r.extend([(1, 2)]) is r
        assert r.extend([]) is r

    @given(pairs_strategy, pairs_strategy)
    def test_extend_equals_union(self, p1, p2):
        assert Relation(p1).extend(p2) == Relation(p1) | Relation(p2)

    @given(pairs_strategy, pairs_strategy)
    def test_extend_reuses_index_correctly(self, p1, p2):
        """Growing via extend (with the successor index pre-warmed) must
        behave identically to a fresh relation in index-consuming ops."""
        base = Relation(p1)
        base.successors()  # warm the index so extend donates it
        grown = base.extend(p2)
        fresh = Relation(set(p1) | set(p2))
        probe = Relation([(i, (i + 3) % 8) for i in range(8)])
        assert grown.compose(probe) == fresh.compose(probe)
        assert grown.is_acyclic() == fresh.is_acyclic()

    @given(pairs_strategy)
    def test_pair_by_pair_growth(self, pairs):
        r = Relation.empty()
        for pair in pairs:
            r = r.extend([pair])
        assert r == Relation(pairs)


class TestRelationBuilder:
    def test_add_and_freeze(self):
        b = RelationBuilder()
        assert b.add(1, 2)
        assert not b.add(1, 2)  # duplicate
        assert b.add(2, 3)
        assert b.freeze() == rel((1, 2), (2, 3))

    def test_add_chain_transitive(self):
        b = RelationBuilder()
        b.add_chain([1, 2, 3])
        assert b.freeze() == Relation.from_order([1, 2, 3])

    def test_add_chain_successive(self):
        b = RelationBuilder()
        b.add_chain([1, 2, 3], transitive=False)
        assert b.freeze() == Relation.from_successive([1, 2, 3])

    def test_has_path(self):
        b = RelationBuilder([(1, 2), (2, 3)])
        assert b.has_path(1, 3)
        assert not b.has_path(3, 1)
        assert b.has_path(1, 1)  # trivially reachable

    def test_would_close_cycle(self):
        b = RelationBuilder([(1, 2), (2, 3)])
        assert b.would_close_cycle(3, 1)
        assert b.would_close_cycle(4, 4)  # self-loop
        assert not b.would_close_cycle(1, 3)

    @given(pairs_strategy)
    def test_freeze_matches_direct_construction(self, pairs):
        b = RelationBuilder(pairs)
        frozen = b.freeze()
        direct = Relation(pairs)
        assert frozen == direct
        probe = Relation([(i, (i + 1) % 8) for i in range(8)])
        assert frozen.compose(probe) == direct.compose(probe)
        assert frozen.is_acyclic() == direct.is_acyclic()


# --------------------------------------------------------------------- #
# Differential property tests: every bitmask kernel op is checked
# against an executable reference semantics over frozensets of pairs.
# Strategies deliberately include empty relations, self-loops and
# non-contiguous event ids (the bit-position-is-event-id encoding must
# not assume dense 0..n-1 universes).
# --------------------------------------------------------------------- #

# sparse ids: gaps, plus ids above one 64-bit word to cross word sizes
sparse_ids = st.sampled_from([0, 1, 2, 3, 5, 11, 40, 67])
sparse_pairs = st.frozensets(
    st.tuples(sparse_ids, sparse_ids), max_size=24
)
sparse_sets = st.frozensets(sparse_ids, max_size=8)


def ref_compose(r, s):
    return frozenset((a, d) for a, b in r for c, d in s if b == c)


def ref_closure(r):
    out = set(r)
    while True:
        new = ref_compose(out, out) | out
        if new == out:
            return frozenset(out)
        out = new


def ref_acyclic(r):
    closure = ref_closure(r)
    return not any(a == b for a, b in closure)


def as_pairs(relation):
    return frozenset(relation)


class TestDifferential:
    """Kernel ops vs. the frozenset-of-pairs reference semantics."""

    @given(sparse_pairs, sparse_pairs)
    def test_union(self, r, s):
        assert as_pairs(Relation(r) | Relation(s)) == r | s

    @given(sparse_pairs, sparse_pairs)
    def test_intersection(self, r, s):
        assert as_pairs(Relation(r) & Relation(s)) == r & s

    @given(sparse_pairs, sparse_pairs)
    def test_difference(self, r, s):
        assert as_pairs(Relation(r) - Relation(s)) == r - s

    @given(sparse_pairs)
    def test_inverse(self, r):
        assert as_pairs(Relation(r).inverse()) == frozenset(
            (b, a) for a, b in r
        )

    @given(sparse_pairs, sparse_pairs)
    def test_compose(self, r, s):
        assert as_pairs(Relation(r).compose(Relation(s))) == ref_compose(r, s)

    @given(sparse_pairs)
    @settings(max_examples=60)
    def test_transitive_closure(self, r):
        assert as_pairs(Relation(r).transitive_closure()) == ref_closure(r)

    @given(sparse_pairs)
    @settings(max_examples=60)
    def test_reflexive_transitive_closure(self, r):
        elems = frozenset(x for pair in r for x in pair)
        expected = ref_closure(r) | frozenset((x, x) for x in elems)
        assert (
            as_pairs(Relation(r).reflexive_transitive_closure(elems))
            == expected
        )

    @given(sparse_pairs)
    def test_optional(self, r):
        elems = frozenset(x for pair in r for x in pair)
        expected = r | frozenset((x, x) for x in elems)
        assert as_pairs(Relation(r).optional(elems)) == expected

    @given(sparse_pairs)
    @settings(max_examples=60)
    def test_is_acyclic(self, r):
        assert Relation(r).is_acyclic() == ref_acyclic(r)

    @given(sparse_pairs)
    def test_is_irreflexive(self, r):
        assert Relation(r).is_irreflexive() == all(a != b for a, b in r)

    @given(sparse_pairs, sparse_sets)
    def test_restrict(self, r, keep):
        expected = frozenset(
            (a, b) for a, b in r if a in keep and b in keep
        )
        assert as_pairs(Relation(r).restrict(keep)) == expected

    @given(sparse_pairs, sparse_sets)
    def test_restrict_domain(self, r, keep):
        expected = frozenset((a, b) for a, b in r if a in keep)
        assert as_pairs(Relation(r).restrict_domain(keep)) == expected

    @given(sparse_pairs, sparse_sets)
    def test_restrict_range(self, r, keep):
        expected = frozenset((a, b) for a, b in r if b in keep)
        assert as_pairs(Relation(r).restrict_range(keep)) == expected

    @given(sparse_pairs)
    def test_domain_codomain_field(self, r):
        relation = Relation(r)
        assert relation.domain() == frozenset(a for a, _ in r)
        assert relation.codomain() == frozenset(b for _, b in r)
        assert relation.field() == frozenset(x for pair in r for x in pair)

    @given(sparse_pairs)
    def test_pairs_len_bool_contains(self, r):
        relation = Relation(r)
        assert relation.pairs == r
        assert len(relation) == len(r)
        assert bool(relation) == bool(r)
        for pair in r:
            assert pair in relation
        assert (99, 98) not in relation

    @given(sparse_pairs)
    def test_successor_mask_matches_pairs(self, r):
        relation = Relation(r)
        for a in relation.domain():
            mask = relation.successor_mask(a)
            succ = frozenset(b for x, b in r if x == a)
            assert frozenset(
                i for i in range(128) if (mask >> i) & 1
            ) == succ

    @given(sparse_sets, sparse_sets)
    def test_cartesian(self, xs, ys):
        expected = frozenset((a, b) for a in xs for b in ys)
        assert as_pairs(Relation.cartesian(xs, ys)) == expected

    @given(sparse_sets)
    def test_identity(self, xs):
        assert as_pairs(Relation.identity(xs)) == frozenset(
            (x, x) for x in xs
        )

    @given(sparse_pairs, sparse_pairs)
    def test_seq_equals_compose(self, r, s):
        assert Relation(r).seq(Relation(s)) == Relation(r).compose(
            Relation(s)
        )

    @given(sparse_pairs)
    def test_equality_and_hash_are_extensional(self, r):
        a = Relation(r)
        b = Relation(sorted(r))  # different construction order
        assert a == b
        assert hash(a) == hash(b)

    def test_negative_event_id_rejected(self):
        with pytest.raises(ValueError):
            Relation([(-1, 0)])


class TestEventUniverse:
    def test_dense_and_sparse(self):
        from repro.core.relations import EventUniverse

        dense = EventUniverse([0, 1, 2])
        assert dense.is_dense()
        sparse = EventUniverse([0, 2, 5])
        assert not sparse.is_dense()
        assert sparse.eids == (0, 2, 5)
        assert sparse.mask == 0b100101

    def test_identity_and_full(self):
        from repro.core.relations import EventUniverse

        uni = EventUniverse([1, 3])
        assert as_pairs(uni.identity()) == frozenset([(1, 1), (3, 3)])
        assert as_pairs(uni.full()) == frozenset(
            (a, b) for a in (1, 3) for b in (1, 3)
        )

    def test_identity_cached_across_instances(self):
        from repro.core.relations import EventUniverse

        a = EventUniverse([0, 1, 4])
        b = EventUniverse([4, 1, 0])
        assert a.identity() is b.identity()
        assert a.full() is b.full()

    def test_mask_roundtrip(self):
        from repro.core.relations import EventUniverse

        uni = EventUniverse([0, 2, 7])
        mask = uni.mask_of([2, 7])
        assert uni.events_of(mask) == frozenset([2, 7])
