"""repro.farm: corpus manifests, blessed baselines, drift diffing, the
farm event stream, and the ``telechat farm`` CLI."""

import json
import os
import random

import pytest

from repro.api import (
    CellFinished,
    FarmFinished,
    FarmPlan,
    FarmStarted,
    PlanError,
    Session,
    SuiteFinished,
)
from repro.pipeline.cli import main
from repro.pipeline.farm import (
    FarmError,
    FarmManifest,
    baseline_record,
    file_digest,
    generate_corpus,
    read_baseline,
    write_baseline,
)
from repro.tools.diy import DiyConfig
from repro.tools.mcompare import diff_baselines

#: a deliberately tiny family — two LB tests (po + the ctrl2 deleted
#: dependency the gcc-O1-ARM profile turns positive) — so end-to-end
#: farm passes stay fast.
MINI_SUITES = {
    "mini": DiyConfig(
        shapes=("LB",), orders=("rlx",), fences=(None,),
        deps=("po", "ctrl2"), variants=("load-store",),
    ),
}
MINI_PROFILES = ("gcc-O1-ARM",)


@pytest.fixture()
def corpus(tmp_path):
    """A generated-and-blessed mini corpus."""
    root = tmp_path / "corpus"
    generate_corpus(root, suites=MINI_SUITES, profiles=MINI_PROFILES)
    for event in Session().farm(FarmPlan(root=str(root), bless=True)):
        pass
    return str(root)


# --------------------------------------------------------------------------- #
# manifest + corpus files
# --------------------------------------------------------------------------- #
class TestManifest:
    def test_generate_and_load_round_trip(self, tmp_path):
        manifest = generate_corpus(tmp_path, suites=MINI_SUITES,
                                   profiles=MINI_PROFILES)
        loaded = FarmManifest.load(tmp_path)
        assert set(loaded.suites) == {"mini"}
        assert loaded.suites["mini"] == manifest.suites["mini"]
        assert loaded.baselines == manifest.baselines
        assert loaded.suites["mini"].tests == 2

    def test_verify_suite_passes_on_intact_file(self, tmp_path):
        generate_corpus(tmp_path, suites=MINI_SUITES, profiles=MINI_PROFILES)
        manifest = FarmManifest.load(tmp_path)
        spec = manifest.verify_suite("mini")
        assert spec.digest == file_digest(tmp_path / "suites" / "mini.jsonl")

    def test_verify_suite_catches_drifted_file(self, tmp_path):
        generate_corpus(tmp_path, suites=MINI_SUITES, profiles=MINI_PROFILES)
        suite_path = tmp_path / "suites" / "mini.jsonl"
        with open(suite_path, "a") as handle:
            handle.write("\n")
        with pytest.raises(FarmError, match="drifted on disk"):
            FarmManifest.load(tmp_path).verify_suite("mini")

    def test_unknown_suite_is_an_error(self, tmp_path):
        generate_corpus(tmp_path, suites=MINI_SUITES, profiles=MINI_PROFILES)
        with pytest.raises(FarmError, match="unknown suite"):
            FarmManifest.load(tmp_path).verify_suite("nope")

    def test_missing_manifest_is_an_error(self, tmp_path):
        with pytest.raises(FarmError, match="no farm manifest"):
            FarmManifest.load(tmp_path)

    def test_manifest_save_is_deterministic(self, tmp_path):
        manifest = generate_corpus(tmp_path, suites=MINI_SUITES,
                                   profiles=MINI_PROFILES)
        first = open(manifest.manifest_path, "rb").read()
        manifest.save()
        assert open(manifest.manifest_path, "rb").read() == first


# --------------------------------------------------------------------------- #
# baselines
# --------------------------------------------------------------------------- #
def _record(digest="d1", profile="llvm-O2-AArch64", verdict="equal", **extra):
    record = {
        "schema": 1, "digest": digest, "test": "LB001", "profile": profile,
        "source_model": "rc11", "augment": True, "budget_candidates": 400000,
        "status": "ok", "verdict": verdict,
        "target_outcomes": [{"r0": 0}], "positive": [], "negative": [],
        "seconds": {"source": 0.1}, "source_reused": True,
        "artifacts": {"compile": "abc"}, "source_simulated": False,
    }
    record.update(extra)
    return record


class TestBaselines:
    def test_baseline_record_strips_volatile_fields(self):
        blessed = baseline_record(_record())
        for volatile in ("seconds", "artifacts", "source_reused",
                         "source_simulated"):
            assert volatile not in blessed
        assert blessed["verdict"] == "equal"
        assert blessed["schema"] == 1  # still store-loadable

    def test_write_baseline_is_order_insensitive(self, tmp_path):
        records = [_record(digest=f"d{i}") for i in range(8)]
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert write_baseline(records, a) == 8
        shuffled = records[:]
        random.Random(7).shuffle(shuffled)
        write_baseline(shuffled, b)
        assert a.read_bytes() == b.read_bytes()

    def test_read_baseline_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "base.jsonl"
        write_baseline([_record()], path)
        with open(path, "a") as handle:
            handle.write('{"digest": "torn-mid-wri')
        assert len(read_baseline(path)) == 1


# --------------------------------------------------------------------------- #
# drift diffing
# --------------------------------------------------------------------------- #
class TestDiffBaselines:
    def test_identical_records_have_no_drift(self):
        records = [_record(digest="d1"), _record(digest="d2")]
        diff = diff_baselines(records, records)
        assert not diff.has_drift
        assert "no drift" in diff.pretty()

    def test_volatile_fields_never_drift(self):
        noisy = _record(seconds={"source": 99.0}, source_reused=False,
                        artifacts={"compile": "other"})
        assert not diff_baselines([_record()], [noisy]).has_drift

    def test_new_and_lost_positive(self):
        blessed = [_record(digest="d1", verdict="equal"),
                   _record(digest="d2", verdict="positive")]
        current = [_record(digest="d1", verdict="positive"),
                   _record(digest="d2", verdict="equal")]
        diff = diff_baselines(blessed, current)
        assert diff.count("new-positive") == 1
        assert diff.count("lost-positive") == 1
        assert "new-positive" in diff.pretty()
        assert "lost-positive" in diff.pretty()

    def test_missing_and_unexpected(self):
        diff = diff_baselines([_record(digest="d1")], [_record(digest="d2")])
        assert diff.count("missing") == 1
        assert diff.count("unexpected") == 1

    def test_outcome_change_with_same_verdict(self):
        current = _record(target_outcomes=[{"r0": 1}])
        diff = diff_baselines([_record()], [current])
        assert diff.count("outcome-change") == 1

    def test_outcome_lists_compare_as_sets(self):
        blessed = _record(target_outcomes=[{"r0": 0}, {"r0": 1}])
        current = _record(target_outcomes=[{"r0": 1}, {"r0": 0}])
        assert not diff_baselines([blessed], [current]).has_drift

    def test_status_change(self):
        diff = diff_baselines([_record()], [_record(status="timeout")])
        assert diff.count("status-change") == 1

    def test_deltas_are_deterministically_ordered(self):
        blessed = [_record(digest=f"d{i}") for i in range(4)]
        diff_a = diff_baselines(blessed, [])
        diff_b = diff_baselines(list(reversed(blessed)), [])
        assert diff_a.deltas == diff_b.deltas


# --------------------------------------------------------------------------- #
# the farm event stream
# --------------------------------------------------------------------------- #
class TestFarmStream:
    def test_bless_then_clean_run(self, corpus):
        events = list(Session().farm(corpus))
        assert isinstance(events[0], FarmStarted)
        assert isinstance(events[-1], FarmFinished)
        assert events[-1].drift == 0
        suite_events = [e for e in events if isinstance(e, SuiteFinished)]
        assert [e.suite for e in suite_events] == ["mini"]
        assert suite_events[0].records == 2
        cells = [e for e in events if isinstance(e, CellFinished)]
        assert len(cells) == 2
        # the ctrl2 deleted-dependency positive is blessed, not drift
        assert "positive" in {e.verdict for e in cells}

    def test_stream_grammar(self, corpus):
        kinds = [e.kind for e in Session().farm(corpus)]
        assert kinds[0] == "farm_started"
        assert kinds[-1] == "farm_finished"
        assert kinds.count("suite_finished") == 1
        # every event serialises
        for event in Session().farm(corpus):
            json.dumps(event.as_dict(), sort_keys=True)

    def test_model_perturbation_drifts(self, corpus):
        plan = FarmPlan(root=corpus, source_model="rc11+lb")
        events = list(Session().farm(plan))
        finished = events[-1]
        assert finished.drift > 0
        suite = next(e for e in events if isinstance(e, SuiteFinished))
        assert suite.drift_counts.get("lost-positive", 0) >= 1
        assert "DRIFT" in suite.report

    def test_unblessed_baseline_is_an_error(self, tmp_path):
        generate_corpus(tmp_path, suites=MINI_SUITES, profiles=MINI_PROFILES)
        stream = Session().farm(str(tmp_path))
        with pytest.raises(FarmError, match="not blessed"):
            for event in stream:
                pass

    def test_unknown_filters_are_errors(self, corpus):
        with pytest.raises(FarmError, match="unknown suites"):
            list(Session().farm(FarmPlan(root=corpus, suites=("nope",))))
        with pytest.raises(FarmError, match="unknown profiles"):
            list(Session().farm(FarmPlan(root=corpus,
                                         profiles=("llvm-O9-Zarch",))))

    def test_rebless_is_byte_identical(self, corpus):
        baseline = os.path.join(corpus, "baselines",
                                "mini--gcc-O1-ARM--rc11.jsonl")
        first = open(baseline, "rb").read()
        for event in Session().farm(FarmPlan(root=corpus, bless=True)):
            pass
        assert open(baseline, "rb").read() == first


class TestFarmPlanValidation:
    def test_needs_root(self):
        with pytest.raises(PlanError, match="corpus root"):
            FarmPlan()

    def test_bless_refuses_model_override(self):
        with pytest.raises(PlanError, match="bless under a source_model"):
            FarmPlan(root="x", bless=True, source_model="sc")

    def test_empty_filters_are_errors(self):
        with pytest.raises(PlanError, match="empty suites"):
            FarmPlan(root="x", suites=())
        with pytest.raises(PlanError, match="empty profiles"):
            FarmPlan(root="x", profiles=())

    def test_worker_bounds(self):
        with pytest.raises(PlanError, match="workers"):
            FarmPlan(root="x", workers=0)
        with pytest.raises(PlanError, match="processes"):
            FarmPlan(root="x", processes=-1)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestFarmCli:
    def _gen(self, root):
        """The CLI default corpus is the full 222-test one — too slow for
        a unit test — so seed the mini corpus through the library and
        drive run/bless/diff through the CLI."""
        generate_corpus(root, suites=MINI_SUITES, profiles=MINI_PROFILES)

    def test_bless_run_and_perturb(self, tmp_path, capsys):
        root = str(tmp_path)
        self._gen(root)
        assert main(["farm", "bless", "--root", root, "--no-progress"]) == 0
        assert main(["farm", "run", "--root", root, "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert "no drift" in out
        assert main(["farm", "run", "--root", root, "--no-progress",
                     "--cmem", "rc11+lb"]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out
        assert "lost-positive" in out

    def test_run_before_bless_fails_cleanly(self, tmp_path, capsys):
        root = str(tmp_path)
        self._gen(root)
        assert main(["farm", "run", "--root", root, "--no-progress"]) == 2
        assert "not blessed" in capsys.readouterr().err

    def test_json_stream(self, tmp_path, capsys):
        root = str(tmp_path)
        self._gen(root)
        main(["farm", "bless", "--root", root, "--no-progress"])
        capsys.readouterr()
        assert main(["farm", "run", "--root", root, "--no-progress",
                     "--json"]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines() if line]
        kinds = [line["event"] for line in lines]
        assert kinds[0] == "farm_started"
        assert kinds[-1] == "farm_finished"
        assert "suite_finished" in kinds

    def test_offline_diff(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        write_baseline([_record(verdict="equal")], a)
        write_baseline([_record(verdict="positive")], b)
        assert main(["farm", "diff", str(a), str(a)]) == 0
        assert main(["farm", "diff", str(a), str(b)]) == 1
        assert "new-positive" in capsys.readouterr().out

    def test_gen_declares_unblessed_baselines(self, tmp_path, capsys):
        # 'farm gen' itself, on a corpus small enough for a test: reuse
        # the default profiles but confirm the manifest lands and names
        # every declared baseline cell
        root = str(tmp_path)
        self._gen(root)
        manifest = FarmManifest.load(root)
        assert [spec.profile for spec in manifest.baselines] == ["gcc-O1-ARM"]
        assert not os.path.exists(
            os.path.join(root, manifest.baselines[0].file)
        )
