"""Tests for the IR-level symbolic simulator (the validc substrate)."""

import pytest

from repro.baselines.irsim import elaborate_ir
from repro.compiler.ir import IRFunction, IRInstr, IROp, IRProgram
from repro.compiler.lower import lower
from repro.core.events import EventKind, MemoryOrder
from repro.herd.simulator import run_programs
from repro.herd import simulate_c
from repro.lang import parse_c_litmus
from repro.papertests import fig7_lb, fig10_mp_rmw


def simulate_ir(program, model="rc11"):
    return run_programs(program.name, dict(program.init),
                        elaborate_ir(program), model)


class TestIrSemantics:
    def test_matches_source_semantics(self):
        """Unoptimised IR under a model gives the source outcomes
        (projected onto shared state + condition observables: the C-level
        semantics additionally records unobserved locals)."""
        for factory in (fig7_lb, fig10_mp_rmw):
            litmus = factory()
            keys = sorted(set(litmus.init) | set(litmus.condition.observables()))
            ir_result = simulate_ir(lower(litmus))
            c_result = simulate_c(litmus, "rc11")
            assert (
                {o.project(keys) for o in ir_result.outcomes}
                == {o.project(keys) for o in c_result.outcomes}
            )

    def test_rmw_pair(self):
        program = lower(fig10_mp_rmw())
        paths = elaborate_ir(program)[1].paths
        reads = [t for t in paths[0].templates if t.kind is EventKind.READ]
        assert any("RMW-R" in t.tags for t in reads)

    def test_branches_fork(self):
        source = """
C t
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0 == 1) { atomic_store_explicit(y, 1, memory_order_relaxed); }
}
exists (y=1)
"""
        program = lower(parse_c_litmus(source))
        assert len(elaborate_ir(program)[0].paths) == 2

    def test_loop_bounded(self):
        source = """
C t
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = 0;
  while (r0 == 0) { r0 = atomic_load_explicit(x, memory_order_relaxed); }
}
exists (P0:r0=1)
"""
        program = lower(parse_c_litmus(source))
        programs = elaborate_ir(program)
        assert programs[0].paths  # terminates despite the loop

    def test_observed_finals(self):
        program = lower(fig7_lb())
        result = simulate_ir(program)
        keys = set(next(iter(result.outcomes)).as_dict())
        assert "P0:r0" in keys

    def test_deleted_local_defaults_to_zero(self):
        """After DCE the observable is gone: finals read as zero — the
        §IV-B observability loss, visible at the IR level too."""
        from repro.compiler.passes import optimise
        from repro.compiler.profiles import make_profile

        program = lower(fig7_lb())
        profile = make_profile("llvm", "-O2", "aarch64")
        optimised = IRProgram(
            name="opt",
            functions=tuple(optimise(fn, profile) for fn in program.functions),
            init=dict(program.init),
        )
        result = simulate_ir(optimised)
        assert all(o.as_dict().get("P0:r0", 0) == 0 for o in result.outcomes)

    def test_fence_template(self):
        program = lower(fig10_mp_rmw())
        templates = elaborate_ir(program)[0].paths[0].templates
        fences = [t for t in templates if t.kind is EventKind.FENCE]
        assert fences and fences[0].order is MemoryOrder.REL
