"""Tests for the hardware simulator and the C4/cmmtest/validc baselines."""

import pytest

from repro.baselines import c4_test, cmmtest_check, validc_check
from repro.compiler import make_profile
from repro.hw import CHIPS, get_chip, list_chips, run_on_hardware
from repro.papertests import fig7_lb, fig9_lb_plain, fig10_mp_rmw
from repro.tools import assembly_to_litmus, compile_and_disassemble, prepare


def compiled_fig7(profile=None):
    profile = profile or make_profile("llvm", "-O3", "aarch64")
    prepared = prepare(fig7_lb())
    c2s = compile_and_disassemble(prepared, profile)
    return assembly_to_litmus(c2s.obj, prepared.condition, listing=c2s.listing)


class TestChips:
    def test_inventory(self):
        for name in ("raspberry-pi", "apple-a9", "tegra2", "thunderx2",
                     "sc-reference"):
            assert name in list_chips()

    def test_unknown_chip_raises(self):
        with pytest.raises(KeyError):
            get_chip("pentium-pro")

    def test_stress_raises_weakness(self):
        chip = get_chip("apple-a9")
        assert chip.effective_weakness(True) > chip.effective_weakness(False)

    def test_weakness_capped_at_one(self):
        chip = get_chip("thunderx2")
        assert chip.effective_weakness(True) <= 1.0


class TestHardwareSimulator:
    def test_pi_never_shows_lb(self):
        """In-order silicon cannot exhibit load buffering — the §IV-A miss."""
        result = run_on_hardware(compiled_fig7(), "raspberry-pi",
                                 runs=500, seed=3, stress=True)
        lb = [o for o in result.observed
              if o.as_dict().get("out_P0_r0") == 1
              and o.as_dict().get("out_P1_r0") == 1]
        assert not lb
        assert result.missed  # the behaviour exists architecturally

    def test_ooo_chip_can_show_lb(self):
        result = run_on_hardware(compiled_fig7(), "thunderx2",
                                 runs=500, seed=3, stress=True)
        lb = [o for o in result.observed
              if o.as_dict().get("out_P0_r0") == 1
              and o.as_dict().get("out_P1_r0") == 1]
        assert lb

    def test_seed_determinism(self):
        a = run_on_hardware(compiled_fig7(), "apple-a9", runs=100, seed=7)
        b = run_on_hardware(compiled_fig7(), "apple-a9", runs=100, seed=7)
        assert a.counts == b.counts

    def test_different_seeds_may_differ(self):
        """Across seeds (= machines/runs) histograms differ: C4's
        nondeterminism, reproducibly."""
        a = run_on_hardware(compiled_fig7(), "apple-a9", runs=50, seed=1)
        b = run_on_hardware(compiled_fig7(), "apple-a9", runs=50, seed=2)
        assert a.counts != b.counts

    def test_observed_subset_of_architecture(self):
        result = run_on_hardware(compiled_fig7(), "thunderx2", runs=200, seed=5)
        assert result.observed <= result.architecturally_allowed

    def test_run_count_conserved(self):
        result = run_on_hardware(compiled_fig7(), "apple-a9", runs=123, seed=0)
        assert sum(result.counts.values()) == 123

    def test_arch_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_on_hardware(compiled_fig7(), "tegra2")  # armv7 chip

    def test_histogram_renders(self):
        result = run_on_hardware(compiled_fig7(), "apple-a9", runs=10, seed=0)
        assert "runs" in result.histogram()


class TestC4:
    def test_c4_misses_lb_on_pi(self):
        """The paper's central §IV-A comparison (Claim 2)."""
        result = c4_test(fig7_lb(), make_profile("llvm", "-O3", "aarch64"),
                         chip="raspberry-pi", runs=500, seed=1, stress=True)
        assert not result.found_bug
        assert result.missed_behaviours
        assert not result.deterministic

    def test_c4_finds_lb_on_ooo_silicon(self):
        result = c4_test(fig7_lb(), make_profile("llvm", "-O3", "aarch64"),
                         chip="thunderx2", runs=500, seed=1, stress=True)
        assert result.found_bug

    def test_c4_may_miss_even_on_capable_chip(self):
        """Few runs + no stress: the weak outcome often never surfaces."""
        result = c4_test(fig7_lb(), make_profile("llvm", "-O3", "aarch64"),
                         chip="apple-a9", runs=5, seed=0, stress=False)
        assert not result.found_bug

    def test_telechat_vs_c4_on_same_input(self):
        """T´el´echat (model-based) finds what C4-on-Pi cannot."""
        from repro.pipeline import test_compilation

        profile = make_profile("llvm", "-O3", "aarch64")
        tele = test_compilation(fig7_lb(), profile)
        c4 = c4_test(fig7_lb(), profile, chip="raspberry-pi",
                     runs=1000, seed=0, stress=True)
        assert tele.found_bug and not c4.found_bug


class TestCmmtest:
    def test_clean_compilation_no_warnings(self):
        result = cmmtest_check(fig7_lb(), make_profile("llvm", "-O1", "aarch64"))
        assert not result.needs_expert

    def test_deleted_local_suppressed_not_warned(self):
        """The [65] blind spot: thread-local deletion generates only a
        *suppressed* note, never a warning."""
        result = cmmtest_check(fig9_lb_plain(),
                               make_profile("llvm", "-O2", "aarch64"))
        assert not result.warnings
        assert result.suppressed
        assert all(w.kind == "local-deleted" for w in result.suppressed)

    def test_fig10_bug_invisible_to_cmmtest(self):
        """cmmtest cannot flag the Fig. 10 bug: the RMW's shared-memory
        trace is unchanged; only the (suppressed) local vanished."""
        result = cmmtest_check(fig10_mp_rmw(),
                               make_profile("llvm", "-O2", "aarch64", version=11))
        assert not result.warnings


class TestValidc:
    def test_valid_optimisation_passes(self):
        result = validc_check(fig7_lb(), make_profile("llvm", "-O3", "aarch64"))
        assert result.valid

    def test_backend_bugs_invisible_to_validc(self):
        """validc checks IR only: the AArch64 ST-form selection bug of
        Fig. 10 happens below IR, so validc sees nothing (Table I's
        generality gap)."""
        buggy = make_profile("llvm", "-O2", "aarch64", version=11)
        result = validc_check(fig10_mp_rmw(), buggy)
        assert result.valid

    def test_ir_outcomes_match_source_semantics(self):
        from repro.herd import simulate_c

        result = validc_check(fig7_lb(), make_profile("llvm", "-O1", "aarch64"))
        source = simulate_c(fig7_lb(), "rc11")
        assert result.reference.outcomes == source.outcomes
