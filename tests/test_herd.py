"""Tests for the herd-style enumerator and simulator."""

import pytest

from repro.core.errors import SimulationTimeout
from repro.herd import Budget, EnumerationStats, enumerate_candidates, simulate_c
from repro.herd.templates import rename_reads
from repro.core.expr import BinOp, Const, ReadVal
from repro.lang import parse_c_litmus
from repro.lang.semantics import elaborate
from repro.papertests import fig7_lb, fig11_lb3

SB = """
C sb
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(y, 1, memory_order_relaxed);
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P0:r0=0 /\\ P1:r0=0)
"""


class TestEnumeration:
    def test_candidate_count_sb(self):
        """SB: each read has 2 rf choices; co per location is forced
        (init + one write) → 4 candidates."""
        litmus = parse_c_litmus(SB)
        stats = EnumerationStats()
        candidates = list(
            enumerate_candidates(dict(litmus.init), elaborate(litmus), stats=stats)
        )
        assert len(candidates) == 4
        assert stats.rf_assignments == 4

    def test_all_candidates_well_formed(self):
        litmus = parse_c_litmus(SB)
        for candidate in enumerate_candidates(dict(litmus.init), elaborate(litmus)):
            candidate.execution.check_well_formed()

    def test_value_cycle_rejected(self):
        """Out-of-thin-air value cycles never appear as candidates."""
        source = """
C oota
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, r0, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  atomic_store_explicit(x, r0, memory_order_relaxed);
}
exists (P0:r0=1)
"""
        litmus = parse_c_litmus(source)
        stats = EnumerationStats()
        candidates = list(
            enumerate_candidates(dict(litmus.init), elaborate(litmus), stats=stats)
        )
        assert stats.rejected_value_cycle > 0
        for candidate in candidates:
            # all remaining values trace back to init: zero everywhere
            for event in candidate.execution.events:
                if event.is_access:
                    assert event.value == 0

    def test_finals_solved(self):
        litmus = parse_c_litmus(SB)
        finals = {
            candidate.finals_dict()["P0:r0"]
            for candidate in enumerate_candidates(dict(litmus.init), elaborate(litmus))
        }
        assert finals == {0, 1}

    def test_budget_exceeded_raises(self):
        litmus = fig11_lb3()
        with pytest.raises(SimulationTimeout):
            list(
                enumerate_candidates(
                    dict(litmus.init),
                    elaborate(litmus),
                    budget=Budget(max_candidates=2),
                )
            )

    def test_deadline_budget(self):
        litmus = fig11_lb3()
        with pytest.raises(SimulationTimeout):
            list(
                enumerate_candidates(
                    dict(litmus.init),
                    elaborate(litmus),
                    budget=Budget(deadline_seconds=0.0),
                )
            )

    def test_untouched_init_location_gets_write(self):
        source = """
C t
{ *x = 0; *z = 7; }
void P0(atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
exists (x=1)
"""
        litmus = parse_c_litmus(source)
        candidate = next(
            enumerate_candidates(dict(litmus.init), elaborate(litmus))
        )
        assert candidate.execution.final_memory()["z"] == 7


class TestRenameReads:
    def test_renames_nested(self):
        expr = BinOp("+", ReadVal(0), BinOp("*", ReadVal(1), Const(2)))
        renamed = rename_reads(expr, {0: 10, 1: 11})
        assert renamed.reads() == frozenset({10, 11})

    def test_const_unchanged(self):
        assert rename_reads(Const(5), {0: 1}) == Const(5)


class TestSimulator:
    def test_outcome_shape(self):
        litmus = parse_c_litmus(SB)
        result = simulate_c(litmus, "rc11")
        assert len(result.outcomes) == 4
        keys = set(next(iter(result.outcomes)).as_dict())
        assert keys == {"x", "y", "P0:r0", "P1:r0"}

    def test_determinism(self):
        """The paper's key property: identical outcomes on every run."""
        litmus = fig7_lb()
        first = simulate_c(litmus, "rc11")
        second = simulate_c(litmus, "rc11")
        assert first.outcomes == second.outcomes

    def test_model_accepts_string_or_object(self):
        from repro.cat.registry import get_model

        litmus = parse_c_litmus(SB)
        by_name = simulate_c(litmus, "rc11")
        by_object = simulate_c(litmus, get_model("rc11"))
        assert by_name.outcomes == by_object.outcomes

    def test_keep_executions(self):
        litmus = parse_c_litmus(SB)
        result = simulate_c(litmus, "rc11", keep_executions=True)
        assert result.executions
        execution, outcome = result.executions[0]
        assert outcome in result.outcomes

    def test_stats_populated(self):
        litmus = parse_c_litmus(SB)
        result = simulate_c(litmus, "rc11")
        assert result.stats.candidates > 0
        assert result.stats.elapsed_seconds >= 0
