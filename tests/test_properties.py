"""Property-based tests on cross-cutting invariants.

These encode the semantic facts the whole reproduction leans on:

* model strength ordering (SC ⊆ RC11 ⊆ rc11+lb ⊆ c11_simp outcomes);
* adding fences never adds outcomes (monotonicity);
* enumeration determinism;
* the s2l optimiser preserves observable outcomes on random diy tests;
* every architecture's compiled outcome set contains the SC outcomes
  (compilation never loses sequential interleavings).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import make_profile
from repro.core.events import MemoryOrder
from repro.herd import simulate_asm, simulate_c
from repro.lang.printer import print_c_litmus
from repro.tools import (
    assembly_to_litmus,
    build_test,
    compile_and_disassemble,
    get_shape,
    prepare,
)
from repro.tools.mcompare import StateMapping

SHAPES = ("MP", "LB", "SB", "S", "R", "2+2W")
ORDERS = ("rlx", "ar", "sc")
FENCES = (None, MemoryOrder.ACQ, MemoryOrder.REL, MemoryOrder.SC)
DEPS = ("po", "data", "ctrl2")

test_strategy = st.builds(
    lambda shape, order, fence, dep: build_test(
        get_shape(shape), order, fence=fence if dep == "po" else None, dep=dep
    ),
    shape=st.sampled_from(SHAPES),
    order=st.sampled_from(ORDERS),
    fence=st.sampled_from(FENCES),
    dep=st.sampled_from(DEPS),
)

relaxed_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestModelStrength:
    @relaxed_settings
    @given(test_strategy)
    def test_sc_strongest(self, litmus):
        sc = simulate_c(litmus, "sc").outcomes
        rc11 = simulate_c(litmus, "rc11").outcomes
        assert sc <= rc11

    @relaxed_settings
    @given(test_strategy)
    def test_rc11_subset_of_rc11_lb(self, litmus):
        rc11 = simulate_c(litmus, "rc11").outcomes
        lb = simulate_c(litmus, "rc11+lb").outcomes
        assert rc11 <= lb

    @relaxed_settings
    @given(test_strategy)
    def test_rc11_lb_subset_of_c11_simp(self, litmus):
        lb = simulate_c(litmus, "rc11+lb").outcomes
        simp = simulate_c(litmus, "c11_simp").outcomes
        assert lb <= simp

    @relaxed_settings
    @given(test_strategy)
    def test_partialsc_between(self, litmus):
        rc11 = simulate_c(litmus, "rc11").outcomes
        partial = simulate_c(litmus, "c11_partialsc").outcomes
        assert rc11 <= partial


class TestFenceMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(
        shape=st.sampled_from(("MP", "LB", "SB")),
        order=st.sampled_from(("rlx",)),
        fence=st.sampled_from((MemoryOrder.ACQ, MemoryOrder.REL, MemoryOrder.SC)),
        model=st.sampled_from(("rc11", "rc11+lb", "c11_simp")),
    )
    def test_fences_only_remove_outcomes(self, shape, order, fence, model):
        bare = build_test(get_shape(shape), order, fence=None)
        fenced = build_test(get_shape(shape), order, fence=fence)
        bare_out = simulate_c(bare, model).outcomes
        fenced_out = simulate_c(fenced, model).outcomes
        assert fenced_out <= bare_out


class TestDeterminism:
    @relaxed_settings
    @given(test_strategy)
    def test_enumeration_deterministic(self, litmus):
        first = simulate_c(litmus, "rc11")
        second = simulate_c(litmus, "rc11")
        assert first.outcomes == second.outcomes
        assert first.flags == second.flags


class TestCompilationInvariants:
    def _compiled_outcomes(self, litmus, profile, optimise=True):
        prepared = prepare(litmus)
        c2s = compile_and_disassemble(prepared, profile)
        asm = assembly_to_litmus(c2s.obj, prepared.condition,
                                 listing=c2s.listing, optimise=optimise)
        mapping = StateMapping(
            observables=frozenset(prepared.init)
            | prepared.condition.observables()
        )
        result = simulate_asm(asm)
        return frozenset(mapping.apply(o) for o in result.outcomes), prepared, mapping

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        shape=st.sampled_from(("MP", "LB", "SB")),
        order=st.sampled_from(("rlx", "sc")),
        arch=st.sampled_from(("aarch64", "x86_64", "riscv64")),
        opt=st.sampled_from(("-O1", "-O3")),
    )
    def test_compiled_contains_sc_outcomes(self, shape, order, arch, opt):
        """Compilation may add weak outcomes but never loses the
        sequentially consistent interleavings."""
        litmus = build_test(get_shape(shape), order)
        profile = make_profile("llvm", opt, arch)
        compiled, prepared, mapping = self._compiled_outcomes(litmus, profile)
        sc = frozenset(
            mapping.apply(o) for o in simulate_c(prepared, "sc").outcomes
        )
        assert sc <= compiled

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        shape=st.sampled_from(("MP", "LB", "SB")),
        order=st.sampled_from(("rlx", "sc")),
        opt=st.sampled_from(("-O0", "-O2")),
    )
    def test_s2l_optimisation_sound(self, shape, order, opt):
        """The §IV-E rewrites never change observable outcomes."""
        litmus = build_test(get_shape(shape), order)
        profile = make_profile("llvm", opt, "aarch64")
        optimised, _, _ = self._compiled_outcomes(litmus, profile, optimise=True)
        raw, _, _ = self._compiled_outcomes(litmus, profile, optimise=False)
        assert optimised == raw

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        shape=st.sampled_from(("MP", "SB")),
        arch=st.sampled_from(("aarch64", "armv7", "ppc64")),
    )
    def test_seq_cst_compilation_preserves_sc_exactly(self, shape, arch):
        """Fully seq_cst tests must compile to exactly the SC outcomes on
        every architecture (the mappings' correctness anchor)."""
        litmus = build_test(get_shape(shape), "sc")
        profile = make_profile("gcc", "-O2", arch)
        compiled, prepared, mapping = self._compiled_outcomes(litmus, profile)
        sc = frozenset(
            mapping.apply(o) for o in simulate_c(prepared, "sc").outcomes
        )
        assert compiled == sc

    def test_roundtrip_print_parse_simulate(self):
        """Printing a generated test and re-parsing preserves outcomes."""
        from repro.lang.parser import parse_c_litmus

        for shape in ("MP", "LB"):
            litmus = build_test(get_shape(shape), "rlx")
            reparsed = parse_c_litmus(print_c_litmus(litmus), litmus.name)
            assert (
                simulate_c(litmus, "rc11").outcomes
                == simulate_c(reparsed, "rc11").outcomes
            )


class TestKernelEquivalence:
    """The compiled kernel pipeline is a pure optimisation: split
    static/dynamic evaluation over bitmask rows must be observably
    identical to whole-model evaluation, for every generated test."""

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(litmus=test_strategy,
           model_name=st.sampled_from(("sc", "rc11", "c11_simp")))
    def test_split_matches_whole_model(self, litmus, model_name):
        from repro.cat.registry import get_model
        from repro.cat.stdlib import (
            build_env,
            build_static_env,
            dynamic_bindings,
        )

        model = get_model(model_name)
        compiled = model.compile()
        result = simulate_c(litmus, "sc", keep_executions=True)
        for execution, _ in result.executions:
            whole = model.evaluate(build_env(execution))
            static = build_static_env(
                execution.events, execution.po, execution.rmw,
                execution.addr, execution.data, execution.ctrl,
            )
            prefix = compiled.run_static(static.env)
            split = compiled.run_dynamic(
                prefix, dynamic_bindings(execution, static)
            )
            assert split.allowed == whole.allowed
            assert sorted(split.flags) == sorted(whole.flags)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(litmus=test_strategy)
    def test_derived_relations_match_reference(self, litmus):
        """Execution-derived relations (fr, loc, int/ext, final memory)
        computed by mask kernels equal their pair-level definitions."""
        result = simulate_c(litmus, "rc11", keep_executions=True)
        for execution, _ in result.executions:
            rf = frozenset(execution.rf)
            co = frozenset(execution.co)
            ref_fr = frozenset(
                (r, w2) for w, r in rf for w1, w2 in co if w1 == w
            )
            assert frozenset(execution.fr) == ref_fr
            events = execution.events
            ref_loc = frozenset(
                (a.eid, b.eid)
                for a in events for b in events
                if a.eid != b.eid and a.is_access and b.is_access
                and a.loc is not None and a.loc == b.loc
            )
            assert frozenset(execution.same_location()) == ref_loc
            ref_int = frozenset(
                (a.eid, b.eid)
                for a in events for b in events
                if a.eid != b.eid and a.tid == b.tid and not a.is_init
            )
            assert frozenset(execution.internal()) == ref_int
            ref_ext = frozenset(
                (a.eid, b.eid)
                for a in events for b in events
                if a.eid != b.eid and a.tid != b.tid
            )
            assert frozenset(execution.external()) == ref_ext
            co_pairs = execution.co.pairs
            for loc, value in execution.final_memory().items():
                ws = [e for e in events if e.is_write and e.loc == loc]
                maximal = [
                    w for w in ws
                    if not any((w.eid, o.eid) in co_pairs for o in ws)
                ]
                assert len(maximal) == 1
                expected = maximal[0].value
                assert value == (0 if expected is None else expected)


class TestSuiteRoundTripProperties:
    """The farm's corpus contract: dump/load through write_suite →
    SuiteSource preserves content digests, and sharding the reloaded
    suite partitions it exactly — for *randomized* shape families, not
    just the shipped configs."""

    family_strategy = st.builds(
        lambda shapes, order, dep: [
            build_test(get_shape(shape), order,
                       dep=dep if dep != "po" else "po",
                       fence=None,
                       name=f"{shape.replace('+', 'p')}{i:03d}")
            for i, shape in enumerate(shapes)
        ],
        shapes=st.lists(st.sampled_from(SHAPES), min_size=1, max_size=6),
        order=st.sampled_from(ORDERS),
        dep=st.sampled_from(DEPS),
    )

    @relaxed_settings
    @given(family=family_strategy, n=st.integers(min_value=1, max_value=4))
    def test_round_trip_preserves_digests_under_shard(self, family, n):
        import tempfile

        from repro.tools.sources import SuiteSource, write_suite

        digests = [t.digest() for t in family]
        with tempfile.TemporaryDirectory() as tmp:
            path = f"{tmp}/suite.jsonl"
            assert write_suite(family, path) == len(family)
            source = SuiteSource(path)
            assert [t.digest() for t in source] == digests
            # the n shards partition the suite exactly, digests intact
            sharded = [
                [t.digest() for t in source.shard(k, n)] for k in range(n)
            ]
            assert sorted(d for shard in sharded for d in shard) == \
                   sorted(digests)
            for k, shard in enumerate(sharded):
                assert shard == digests[k::n]

    @relaxed_settings
    @given(family=family_strategy,
           torn=st.text(alphabet="{\"abc:,", min_size=1, max_size=20))
    def test_torn_final_line_is_tolerated(self, family, torn):
        """A crashed writer's partial last line never poisons a suite —
        the same contract CampaignStore torn lines have."""
        import json as json_mod
        import tempfile

        from repro.tools.sources import SuiteSource, write_suite

        try:
            json_mod.loads(torn)
            valid = True
        except ValueError:
            valid = False
        if valid:
            return  # only torn (invalid) tails are interesting
        with tempfile.TemporaryDirectory() as tmp:
            path = f"{tmp}/suite.jsonl"
            write_suite(family, path)
            with open(path, "a") as handle:
                handle.write(torn)  # no trailing newline: a torn write
            reloaded = [t.digest() for t in SuiteSource(path)]
            assert reloaded == [t.digest() for t in family]
