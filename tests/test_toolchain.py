"""The staged tool-chain: typed artifacts, per-stage caching, differential
campaigns, stage registration, and the explain trace.

Covers the redesign's acceptance criteria:

* a 2-profile differential campaign performs each compile+lift exactly
  once per (test, profile) and each source simulation once per
  (test, model) — asserted on the per-stage cache counters;
* ``fold_events`` parity holds for differential runs across the serial,
  thread-pool and process-pool backends;
* differential and single-profile runs exercise the same s2l path —
  both produce identical compiled litmus tests for the same profile.
"""

import json
import re

import pytest

from repro.api import CampaignPlan, PlanError, Session
from repro.compiler.profiles import make_profile
from repro.core.errors import ReproError
from repro.papertests import fig7_lb
from repro.pipeline.store import CampaignStore
from repro.pipeline.telechat import differential_outcomes
from repro.toolchain import (
    STAGES,
    CompareStage,
    Toolchain,
    Verdict,
    make_key,
)
from repro.tools.diy import build_test, get_shape


def _tests(n=2):
    shapes = ("LB", "MP", "SB", "S", "R")
    return [
        build_test(get_shape(shapes[i % len(shapes)]), "rlx",
                   name=f"T{i:03d}")
        for i in range(n)
    ]


PROFILE_A = "llvm-O1-AArch64"
PROFILE_B = "llvm-O3-AArch64"


class TestArtifactGraph:
    def test_stage_registry_has_the_fig5_chain(self):
        names = STAGES.names()
        for stage in ("prepare", "compile", "lift", "simulate-source",
                      "simulate-target", "compare"):
            assert stage in names
        # aliases from the paper's tool names resolve too
        assert STAGES.resolve("s2l") == "lift"
        assert STAGES.resolve("mcompare") == "compare"

    def test_keys_chain_from_content_digest(self):
        chain = Toolchain()
        litmus = fig7_lb()
        profile = make_profile("llvm", "-O2", "aarch64")
        prepared = chain.prepare(litmus)
        compiled = chain.compile(prepared, profile)
        lifted = chain.lift(prepared, compiled)
        # provenance is walkable: inputs carry the upstream keys
        assert prepared.inputs == (litmus.digest(),)
        assert compiled.inputs == (prepared.key,)
        assert lifted.inputs == (compiled.key,)
        # ...and identity is content, not name: a renamed copy of the
        # same test produces byte-identical keys
        renamed = build_test(get_shape("LB"), "rlx", name="other_name")
        lb = build_test(get_shape("LB"), "rlx", name="LB001")
        assert chain.prepare(renamed).key == chain.prepare(lb).key

    def test_same_inputs_same_key_across_toolchains(self):
        litmus = fig7_lb()
        profile = make_profile("llvm", "-O2", "aarch64")
        keys = []
        for _ in range(2):
            chain = Toolchain()  # fresh cache each time
            prepared = chain.prepare(litmus)
            compiled = chain.compile(prepared, profile)
            keys.append(compiled.key)
        assert keys[0] == keys[1]

    def test_profile_identity_includes_bug_set(self):
        """The profile *name* carries no version/bug set; artifact keys
        must (a patched-epoch re-run can never replay stale compiles)."""
        chain = Toolchain()
        prepared = chain.prepare(fig7_lb())
        old = make_profile("llvm", "-O2", "aarch64", version=11)
        new = make_profile("llvm", "-O2", "aarch64", version=16)
        assert chain.compile(prepared, old).key != chain.compile(
            prepared, new
        ).key

    def test_compile_reused_across_target_models(self):
        """Per-stage (not per-cell) caching: re-checking under a second
        target model must not recompile."""
        session = Session()
        litmus = fig7_lb()
        session.test(litmus, PROFILE_B)
        stats = session.toolchain().cache.stats()
        assert stats["compile"]["misses"] == 1
        session.test(litmus, PROFILE_B, target_model="aarch64")
        stats = session.toolchain().cache.stats()
        assert stats["compile"]["misses"] == 1  # replayed, not recompiled
        assert stats["lift"]["misses"] == 1
        # the second target simulation did run (same model resolved by
        # default vs explicitly — same key, so it replays too)
        assert stats["simulate-target"]["misses"] == 1


class TestDifferentialToolchain:
    def test_both_paths_produce_identical_compiled_litmus(self):
        """Satellite regression: differential runs the same s2l path as
        single-profile runs — identical compiled litmus per profile."""
        session = Session()
        litmus = fig7_lb()
        tv = session.test(litmus, PROFILE_A)
        diff = session.differential(litmus, PROFILE_A, PROFILE_B)
        assert diff.compiled_a == tv.compiled
        assert diff.compiled_a.pretty() == tv.compiled.pretty()
        # and the optimiser actually ran on both branches
        assert diff.stats_a.total_removed > 0
        assert diff.stats_b.total_removed > 0

    def test_differential_outcomes_exposes_s2l_controls(self):
        """The legacy tuple API now threads optimise/unroll/source_model
        through instead of silently dropping them."""
        a = make_profile("llvm", "-O1", "aarch64")
        b = make_profile("llvm", "-O3", "aarch64")
        opt_a, opt_b, _ = differential_outcomes(fig7_lb(), a, b)
        raw_a, raw_b, _ = differential_outcomes(
            fig7_lb(), a, b, optimise=False
        )
        # the outcome sets agree (s2l soundness) even though the raw
        # tests carry GOT/stack traffic the optimised ones dropped
        assert opt_a.outcomes == raw_a.outcomes
        assert opt_b.outcomes == raw_b.outcomes

    def test_differential_requires_common_architecture(self):
        chain = Toolchain()
        with pytest.raises(ReproError, match="common architecture"):
            chain.run_differential(
                fig7_lb(),
                make_profile("llvm", "-O2", "aarch64"),
                make_profile("llvm", "-O2", "x86_64"),
            )

    def test_ub_oracle_excuses_racy_sources(self):
        """A racy (plain-access) source makes compiler differences
        uninteresting — the oracle flags it exactly as test_tv does."""
        racy = build_test(get_shape("LB"), "rlx", atomic=False,
                          name="LB_plain")
        session = Session()
        with_oracle = session.differential(racy, PROFILE_A, PROFILE_B)
        assert with_oracle.comparison.source_has_ub
        without = session.differential(racy, PROFILE_A, PROFILE_B,
                                       source_model=None)
        assert not without.comparison.source_has_ub
        assert without.source_result is None

    def test_branches_share_prepare_and_source_artifacts(self):
        session = Session()
        session.differential(fig7_lb(), PROFILE_A, PROFILE_B)
        stats = session.toolchain().cache.stats()
        assert stats["prepare"]["misses"] == 1
        assert stats["compile"]["misses"] == 2  # one per branch
        assert stats["simulate-source"]["misses"] == 1  # the oracle, once


class TestDifferentialCampaigns:
    def test_plan_validation(self):
        with pytest.raises(PlanError, match="at least two"):
            CampaignPlan(mode="differential")
        with pytest.raises(PlanError, match="at least two"):
            CampaignPlan(mode="differential", profiles=(PROFILE_A,))
        with pytest.raises(PlanError, match="duplicates"):
            CampaignPlan(mode="differential",
                         profiles=(PROFILE_A, PROFILE_A))
        with pytest.raises(PlanError, match="differential"):
            CampaignPlan(profiles=(PROFILE_A, PROFILE_B))
        with pytest.raises(PlanError, match="unknown campaign mode"):
            CampaignPlan(mode="sideways")
        plan = CampaignPlan(mode="differential",
                            profiles=[PROFILE_A, PROFILE_B])
        assert plan.profiles == (PROFILE_A, PROFILE_B)
        assert plan.describe()["mode"] == "differential"

    def test_cross_arch_pairing_is_a_plan_error(self):
        plan = CampaignPlan(
            tests=_tests(1), mode="differential",
            profiles=(PROFILE_A, "llvm-O2-x86-64"),
        )
        with pytest.raises(PlanError, match="common architecture"):
            Session().campaign(plan).report()

    def test_unresolvable_profile_is_a_plan_error(self):
        plan = CampaignPlan(
            tests=_tests(1), mode="differential",
            profiles=(PROFILE_A, "llvm-O9-AArch64"),
        )
        with pytest.raises(PlanError, match="failed to resolve"):
            Session().campaign(plan).report()

    def test_cache_hit_counters_acceptance(self):
        """THE acceptance criterion: a 2-profile differential campaign
        over N tests compiles+lifts exactly once per (test, profile) and
        simulates each source exactly once per (test, model)."""
        tests = _tests(3)
        session = Session()
        plan = CampaignPlan(
            tests=tests, mode="differential",
            profiles=(PROFILE_A, PROFILE_B),
        )
        report = session.campaign(plan).report()
        assert report.compiled_tests == len(tests)  # one pair per test
        stats = session.toolchain().cache.stats()
        assert stats["compile"]["misses"] == len(tests) * 2
        assert stats["lift"]["misses"] == len(tests) * 2
        assert stats["simulate-target"]["misses"] == len(tests) * 2
        # one source simulation per (test, model): N sims for one model
        assert report.source_simulations == len(tests)
        assert stats["simulate-source"]["misses"] == len(tests)

        # a Claim-4-style re-run under a second source model reuses every
        # compile/lift artifact — only the oracle re-simulates
        report2 = session.campaign(plan.with_model("rc11+lb")).report()
        stats2 = session.toolchain().cache.stats()
        assert stats2["compile"]["misses"] == len(tests) * 2  # unchanged
        assert stats2["lift"]["misses"] == len(tests) * 2
        assert report2.source_simulations == len(tests)  # the new model
        assert stats2["simulate-source"]["misses"] == len(tests) * 2

    def test_fold_parity_across_backends(self):
        """fold_events parity for differential runs: serial, thread pool
        and process pool produce the same report modulo timing."""
        tests = _tests(2)
        base = dict(
            tests=tests, mode="differential",
            profiles=(PROFILE_A, PROFILE_B, "gcc-O2-AArch64"),
        )
        dumps = []
        for extra in ({}, {"workers": 3}, {"processes": 2}):
            report = Session().campaign(
                CampaignPlan(**base, **extra)
            ).report()
            payload = report.to_jsonable(include_timing=False)
            payload.pop("workers")
            payload.pop("processes")
            dumps.append(json.dumps(payload, sort_keys=True))
        assert dumps[0] == dumps[1] == dumps[2]

    def test_store_resume_differential(self, tmp_path):
        tests = _tests(2)
        path = tmp_path / "diff.jsonl"
        plan = CampaignPlan(
            tests=tests, mode="differential",
            profiles=(PROFILE_A, PROFILE_B), resume=True,
        )
        cold = Session(store=CampaignStore(path)).campaign(plan).report()
        assert cold.store_hits == 0
        warm_session = Session(store=CampaignStore(path))
        warm = warm_session.campaign(plan).report()
        assert warm.store_hits == len(tests)
        assert warm.source_simulations == 0  # nothing re-simulated
        assert warm_session.toolchain().cache.stats() == {}  # untouched
        # verdict parity between the cold run and the store replay
        assert json.dumps(
            {k and "|".join(k): (c.positive, c.negative, c.equal)
             for k, c in sorted(cold.cells.items())}
        ) == json.dumps(
            {k and "|".join(k): (c.positive, c.negative, c.equal)
             for k, c in sorted(warm.cells.items())}
        )

    def test_sharded_differential_merges(self):
        tests = _tests(3)
        plan = CampaignPlan(
            tests=tests, mode="differential",
            profiles=(PROFILE_A, PROFILE_B),
        )
        whole = Session().campaign(plan).report()
        sharded = Session().campaign_sharded(plan, 2).report()
        assert sharded.compiled_tests == whole.compiled_tests
        for key, cell in whole.cells.items():
            other = sharded.cells[key]
            assert (cell.positive, cell.negative, cell.equal) == (
                other.positive, other.negative, other.equal
            )

    def test_differential_events_carry_mode_and_artifacts(self):
        plan = CampaignPlan(
            tests=_tests(1), mode="differential",
            profiles=(PROFILE_A, PROFILE_B),
        )
        cells = [e for e in Session().campaign(plan)
                 if type(e).__name__ == "CellFinished"]
        assert len(cells) == 1
        event = cells[0]
        assert event.mode == "differential"
        assert event.opt == "diff"
        assert event.compiler == f"{PROFILE_A}|{PROFILE_B}"
        for stage in ("prepare", "compile:a", "lift:a", "compile:b",
                      "lift:b", "compare", "simulate-source"):
            assert stage in event.artifacts, stage
        assert event.record["mode"] == "differential"
        assert event.record["profile_a"] == PROFILE_A
        # the JSON projection stays serialisable
        json.dumps(event.as_dict(), sort_keys=True)

    def test_tv_events_carry_artifacts(self):
        plan = CampaignPlan(tests=_tests(1), arches=("aarch64",),
                            opts=("-O2",), compilers=("llvm",))
        cells = [e for e in Session().campaign(plan)
                 if type(e).__name__ == "CellFinished"]
        assert cells and cells[0].mode == "tv"
        for stage in ("prepare", "compile", "lift", "simulate-source",
                      "simulate-target", "compare"):
            assert stage in cells[0].artifacts, stage

    def test_cli_differential_json_stream(self, capsys):
        from repro.pipeline.cli import main

        code = main([
            "campaign", "--small", "--json", "--no-progress",
            "--differential", PROFILE_A, PROFILE_B,
        ])
        assert code == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.strip().splitlines()]
        kinds = {line["event"] for line in lines}
        assert {"campaign_started", "cell_finished",
                "campaign_finished"} <= kinds
        diff_cells = [l for l in lines if l["event"] == "cell_finished"]
        assert all(l["mode"] == "differential" for l in diff_cells)


class TestSessionToolchain:
    def test_toolchain_introspection(self):
        session = Session()
        described = session.toolchain().describe()
        stage_names = {entry["name"] for entry in described["stages"]}
        assert "compile" in stage_names and "lift" in stage_names
        assert described["cache"] == {}  # nothing run yet
        session.test(fig7_lb(), PROFILE_B)
        described = session.toolchain().describe()
        assert described["cache"]["compile"]["misses"] == 1

    def test_register_stage_overlay_is_session_local(self):
        class EveryoneWins(CompareStage):
            def signature(self):
                return "everyone-wins-v1"  # never collide with stock

            def run(self, key, *, left, right, prepared):
                verdict = super().run(
                    key, left=left, right=right, prepared=prepared
                )
                comparison = verdict.comparison
                comparison.positive = frozenset()
                comparison.negative = frozenset()
                return Verdict(
                    key=key, stage=self.name,
                    inputs=(left.key, right.key),
                    comparison=comparison,
                )

        litmus = fig7_lb()
        patched = Session()
        patched.register_stage(EveryoneWins())
        assert patched.test(litmus, PROFILE_B).verdict == "equal"
        # another session still sees the stock comparator (fig7 at -O3
        # on AArch64 is the paper's positive LB difference)
        assert Session().test(litmus, PROFILE_B).verdict == "positive"

    def test_explain_trace_renders_every_stage(self):
        session = Session()
        trace = session.explain(fig7_lb(), (*("llvm", "-O2"), "aarch64"))
        stages = [entry.artifact.stage for entry in trace.entries]
        for stage in ("prepare", "compile", "lift", "simulate-source",
                      "simulate-target", "compare"):
            assert stage in stages, stage
        text = trace.render()
        assert "digraph" in text  # the herd execution dot dump
        assert "exists" in text  # the prepared source
        assert re.search(r"ldr|LOAD", text)  # the disassembly
        assert trace.artifact("lift").stats.parsed_instructions > 0

    def test_explain_differential(self):
        session = Session()
        trace = session.explain(
            fig7_lb(), PROFILE_A, differential_with=PROFILE_B
        )
        stages = [entry.artifact.stage for entry in trace.entries]
        assert stages.count("compile") == 2
        assert trace.result.profile_pair == (
            "llvm-O1-AArch64|llvm-O3-AArch64"
        )

    def test_cli_explain_smoke(self, capsys):
        from repro.pipeline.cli import main

        code = main(["explain", "fig7_lb", "--opt=-O2", "--cmem",
                     "rc11+lb"])
        out = capsys.readouterr().out
        assert code == 0  # rc11+lb excuses the LB outcome (Claim 4)
        assert "── prepare" in out and "── compare" in out
        assert "digraph" in out

    def test_record_round_trip_differential(self):
        """Differential records rebuild through comparison_from_record."""
        from repro.pipeline.telechat import comparison_from_record

        session = Session()
        result = session.differential(fig7_lb(), PROFILE_A, PROFILE_B)
        record = result.to_record()
        rebuilt = comparison_from_record(record)
        assert rebuilt.verdict() == result.verdict
        assert rebuilt.source_outcomes == result.comparison.source_outcomes

    def test_session_local_stages_refuse_pools_and_stores(self, tmp_path):
        """A swapped stage must not be silently ignored by worker
        processes (which build their toolchain from the globals) or
        poison a persistent store (which keys verdicts by name)."""

        class Custom(CompareStage):
            def signature(self):
                return "custom-v1"

        plan_args = dict(tests=_tests(1), arches=("aarch64",),
                         opts=("-O2",), compilers=("llvm",))
        patched = Session()
        patched.register_stage(Custom())
        with pytest.raises(PlanError, match="stage:compare"):
            patched.campaign(
                CampaignPlan(**plan_args, processes=2)
            ).report()
        stored = Session(store=CampaignStore(tmp_path / "s.jsonl"))
        stored.register_stage(Custom())
        with pytest.raises(PlanError, match="stage:compare"):
            stored.campaign(CampaignPlan(**plan_args)).report()
        # thread workers without a store stay fine
        report = patched.campaign(
            CampaignPlan(**plan_args, workers=2)
        ).report()
        assert report.compiled_tests == 1

    def test_reregistering_a_stage_invalidates_cached_cells(self):
        """The in-process result cache must not replay cells the old
        stage set computed after a mid-session register_stage()."""

        class EveryoneWins(CompareStage):
            def signature(self):
                return "everyone-wins-v2"

            def run(self, key, *, left, right, prepared):
                verdict = super().run(
                    key, left=left, right=right, prepared=prepared
                )
                verdict.comparison.positive = frozenset()
                return verdict

        tests = _tests(1)
        plan = CampaignPlan(tests=tests, arches=("aarch64",),
                            opts=("-O3",), compilers=("llvm",))
        session = Session()
        before = session.campaign(plan).report()
        assert before.total_positive() == 1  # LB at -O3: the paper's bug
        session.register_stage(EveryoneWins())
        after = session.campaign(plan).report()
        assert after.cached_cells == 0  # re-simulated, not replayed
        assert after.total_positive() == 0

    def test_seed_model_mismatch_refused(self):
        """A hoisted source_result simulated under a different model
        must not be cached under this run's key (session-wide poison)."""
        from repro.herd.simulator import simulate_c
        from repro.tools.l2c import prepare

        litmus = fig7_lb()
        wrong = simulate_c(prepare(litmus), "rc11+lb")
        session = Session()
        with pytest.raises(ReproError, match="mismatched hoist"):
            session.test(litmus, PROFILE_B, source_model="rc11",
                         source_result=wrong)

    def test_bounded_artifact_cache_recomputes_instead_of_growing(self):
        from repro.toolchain import ArtifactCache

        cache = ArtifactCache(max_entries=2)
        for i in range(10):
            cache.get("compile", f"k{i}", lambda i=i: i)
        assert len(cache.stage("compile")) <= 2
        # a replayable key still replays while under the bound
        fresh = ArtifactCache(max_entries=8)
        fresh.get("compile", "k", lambda: "v")
        assert fresh.get("compile", "k", lambda: "other") == "v"
        # ...and even AT capacity a present key is a hit, never a purge
        full = ArtifactCache(max_entries=2)
        full.get("compile", "a", lambda: 1)
        full.get("compile", "b", lambda: 2)
        assert full.get("compile", "a", lambda: 99) == 1
        assert len(full.stage("compile")) == 2

    def test_stages_token_holds_stage_references(self):
        """The token must hold the stage objects themselves — a bare
        id() could be recycled after GC and revive stale entries."""
        session = Session()
        token = session.stages_token()
        assert any(isinstance(item[1], type(STAGES.get("compare")).__mro__[-2])
                   or hasattr(item[1], "run") for item in token)
        # re-registering changes the token
        class Custom(CompareStage):
            def signature(self):
                return "token-test-v1"
        session.register_stage(Custom())
        assert session.stages_token() != token

    def test_session_artifact_cache_is_bounded(self):
        session = Session(artifact_cache_entries=2)
        for i in range(5):
            session.test(_tests(5)[i], PROFILE_B)
        assert len(session.toolchain().cache.stage("compile")) <= 2
        unbounded = Session(artifact_cache_entries=None)
        assert unbounded.toolchain().cache.max_entries is None

    def test_explain_diff_trace_matches_final_verdict(self):
        """The compare stage dump must render the post-oracle
        classification, not contradict the closing verdict line."""
        racy = build_test(get_shape("LB"), "rlx", atomic=False,
                          name="LB_plain")
        session = Session()
        trace = session.explain(racy, PROFILE_A,
                                differential_with=PROFILE_B)
        compare_artifact = trace.artifact("compare")
        assert (compare_artifact.comparison.source_has_ub
                == trace.result.comparison.source_has_ub)

    def test_cli_differential_single_profile_is_a_usage_error(self, capsys):
        from repro.pipeline.cli import main

        code = main(["campaign", "--small", "--differential", PROFILE_A,
                     "--no-progress"])
        assert code == 2
        assert "at least two" in capsys.readouterr().err

    def test_cli_differential_rejects_sweep_flags(self, capsys):
        """Explicit --arch with --differential must not be silently
        ignored — the user would believe the sweep arch ran."""
        from repro.pipeline.cli import main

        code = main(["campaign", "--small", "--differential", PROFILE_A,
                     PROFILE_B, "--arch", "x86_64", "--no-progress"])
        assert code == 2
        assert "profile names" in capsys.readouterr().err

    def test_make_key_is_order_sensitive_and_stable(self):
        assert make_key("compare", "", ("a", "b")) != make_key(
            "compare", "", ("b", "a")
        )
        assert make_key("lift", "optimise=1", ("x",)) == make_key(
            "lift", "optimise=1", ("x",)
        )
