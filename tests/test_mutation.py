"""Mutation-based test generation (the paper's §V future-work line).

The paper expects "conducting mutation-based testing [46] will find more
bugs".  The l2c fuzzer implements CCmutator-style order weakening; this
test shows it working end-to-end: a seed test whose full fence hides the
Fig. 1 bug mutates into a variant that exposes it.
"""

import pytest

from repro.compiler import make_profile
from repro.lang.ast import Fence
from repro.lang.parser import parse_c_litmus
from repro.pipeline import test_compilation
from repro.tools import fuzz_variants

#: the Fig. 1 shape with a *seq_cst* fence after the exchange: the full
#: barrier (DMB ISH) orders even the NORET read, so the buggy SWP
#: selection is invisible here.
SEED = """
C fig1_seed
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_thread_fence(memory_order_release);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  atomic_exchange_explicit(y, 2, memory_order_release);
  atomic_thread_fence(memory_order_seq_cst);
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=0 /\\ y=2)
"""


class TestMutationCampaign:
    def test_seed_hides_the_bug(self):
        litmus = parse_c_litmus(SEED, "fig1_seed")
        profile = make_profile("llvm", "-O2", "aarch64", version=16)
        assert test_compilation(litmus, profile).verdict != "positive"

    def test_mutation_exposes_the_bug(self):
        """Weakening the seq_cst fence to acquire re-creates Fig. 1."""
        litmus = parse_c_litmus(SEED, "fig1_seed")
        profile = make_profile("llvm", "-O2", "aarch64", version=16)
        verdicts = {}
        for variant in fuzz_variants(litmus, limit=32):
            result = test_compilation(variant, profile)
            verdicts[variant.name] = result.verdict
        assert "positive" in verdicts.values(), (
            f"no mutation exposed the bug: {verdicts}"
        )

    def test_mutations_change_one_statement(self):
        litmus = parse_c_litmus(SEED, "fig1_seed")
        for variant in fuzz_variants(litmus, limit=8):
            differences = 0
            for original, mutated in zip(litmus.threads, variant.threads):
                differences += sum(
                    1 for a, b in zip(original.body, mutated.body) if a != b
                )
            assert differences == 1

    def test_mutations_preserve_condition(self):
        litmus = parse_c_litmus(SEED, "fig1_seed")
        for variant in fuzz_variants(litmus, limit=8):
            assert str(variant.condition) == str(litmus.condition)

    def test_fence_mutations_weaken_only(self):
        from repro.core.events import MemoryOrder

        litmus = parse_c_litmus(SEED, "fig1_seed")
        for variant in fuzz_variants(litmus, limit=32):
            for original, mutated in zip(litmus.threads, variant.threads):
                for a, b in zip(original.body, mutated.body):
                    if a != b and isinstance(a, Fence) and isinstance(b, Fence):
                        assert b.order < a.order
