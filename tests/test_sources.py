"""Streaming TestSources: laziness, shard determinism, round-trips, and
plan/engine acceptance."""

import itertools
import json

import pytest

from repro.api import CampaignPlan, Session
from repro.pipeline.store import CampaignStore
from repro.tools import diy as diy_mod
from repro.tools.diy import DiyConfig, build_test, get_shape, lb_chain, paper_config, small_config
from repro.tools.sources import (
    DiySource,
    ListSource,
    PaperSource,
    StoreReplaySource,
    SuiteFormatError,
    SuiteSource,
    TestSource,
    as_source,
    write_suite,
)


class TestLaziness:
    def test_big_diy_source_is_not_materialised_eagerly(self, monkeypatch):
        """A 10k-test diy source must cost nothing until iterated, and
        only as far as the consumer advances."""
        built = []
        real = diy_mod.build_test

        def counting(*args, **kwargs):
            built.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(diy_mod, "build_test", counting)
        source = DiySource(DiyConfig(
            shapes=("MP", "LB", "SB", "S", "R", "2+2W", "WRC", "IRIW",
                    "ISA2", "RWC", "LB3", "LB4", "SB3"),
            orders=("rlx", "ar", "sc"),
            deps=("po", "data", "ctrl", "ctrl2"),
            variants=("load-store", "rmw-read", "xchg-write",
                      "faa-first-unused"),
            include_plain=True,
            limit=10_000,
        ))
        assert built == []  # construction generates nothing
        plan = CampaignPlan(tests=source, arches=("aarch64",),
                            opts=("-O2",), compilers=("llvm",))
        assert built == []  # planning generates nothing either
        head = list(itertools.islice(iter(source), 5))
        assert len(head) == 5
        assert len(built) == 5  # generation went exactly as far as asked
        assert plan.describe()["tests"]["limit"] == 10_000

    def test_plan_describe_does_not_materialise(self, monkeypatch):
        built = []
        real = diy_mod.build_test
        monkeypatch.setattr(
            diy_mod, "build_test",
            lambda *a, **k: built.append(1) or real(*a, **k),
        )
        source = DiySource(paper_config())
        plan = CampaignPlan(tests=source)
        description = plan.describe()
        assert description["tests"]["source"] == "DiySource"
        assert built == []

    def test_iteration_is_incremental(self, monkeypatch):
        built = []
        real = diy_mod.build_test
        monkeypatch.setattr(
            diy_mod, "build_test",
            lambda *a, **k: built.append(1) or real(*a, **k),
        )
        source = DiySource(DiyConfig(limit=10_000))
        head = list(itertools.islice(iter(source), 5))
        assert len(head) == 5
        assert len(built) == 5  # exactly as far as we pulled


class TestDeterminismAndSharding:
    def test_two_iterations_agree(self):
        source = DiySource(small_config())
        first = [t.digest() for t in source]
        second = [t.digest() for t in source]
        assert first == second

    def test_shards_partition_the_full_iteration(self):
        source = DiySource(small_config())
        full = [t.digest() for t in source]
        n = 3
        shards = [list(source.shard(k, n)) for k in range(n)]
        # interleaving the shards reconstructs the full order exactly
        rebuilt = [None] * len(full)
        for k, shard in enumerate(shards):
            for i, test in enumerate(shard):
                rebuilt[k + i * n] = test.digest()
        assert rebuilt == full

    def test_shard_counts(self):
        source = ListSource(
            [build_test(get_shape("LB"), "rlx", name=f"L{i}")
             for i in range(7)]
        )
        assert source.count() == 7
        assert [source.shard(k, 3).count() for k in range(3)] == [3, 2, 2]
        with pytest.raises(ValueError, match="bad shard"):
            source.shard(3, 3)

    def test_shard_describe(self):
        source = PaperSource().shard(0, 2)
        meta = source.describe()
        assert meta["shard"] == [0, 2]
        assert meta["count"] == 3


class TestPaperSource:
    def test_yields_the_figure_tests(self):
        names = [t.name for t in PaperSource()]
        assert "fig7_lb" in names and "fig1_exchange" in names

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown paper test"):
            list(PaperSource(names=("fig99_nope",)))


class TestSuiteRoundTrip:
    def test_write_and_reload_preserves_digests(self, tmp_path):
        tests = list(DiySource(small_config()))
        path = tmp_path / "suite.jsonl"
        written = write_suite(tests, path)
        assert written == len(tests)
        reloaded = list(SuiteSource(path))
        assert [t.name for t in reloaded] == [t.name for t in tests]
        assert [t.digest() for t in reloaded] == [t.digest() for t in tests]

    def test_suite_source_is_lazy(self, tmp_path):
        tests = list(DiySource(small_config()))
        path = tmp_path / "suite.jsonl"
        write_suite(tests, path)
        head = list(itertools.islice(iter(SuiteSource(path)), 2))
        assert len(head) == 2


class TestSuiteRobustness:
    """The CampaignStore crash-tolerance contract, extended to suites:
    a torn final line is skipped, anything else malformed names the file
    and line (regression: a bare json.JSONDecodeError told the user
    nothing about *which* corpus file was broken)."""

    def _suite(self, tmp_path, lines):
        path = tmp_path / "suite.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_torn_final_line_is_skipped(self, tmp_path):
        tests = list(DiySource(small_config()))[:3]
        path = tmp_path / "suite.jsonl"
        write_suite(tests, path)
        with open(path, "a") as handle:
            handle.write('{"name": "torn", "source": "C torn-mid')
        reloaded = list(SuiteSource(path))
        assert [t.digest() for t in reloaded] == [t.digest() for t in tests]

    def test_interior_malformed_line_names_file_and_line(self, tmp_path):
        path = tmp_path / "suite.jsonl"
        write_suite([build_test(get_shape("LB"), "rlx", name="LB001")], path)
        with open(path, "a") as handle:
            handle.write("{not json\n")
            handle.write('{"name": "ok2", "source": "irrelevant"}\n')
        with pytest.raises(SuiteFormatError) as excinfo:
            list(SuiteSource(path))
        assert excinfo.value.path == str(path)
        assert excinfo.value.line == 2
        assert str(path) in str(excinfo.value)
        assert ":2:" in str(excinfo.value)
        # and it is still a ValueError, like json.JSONDecodeError was
        assert isinstance(excinfo.value, ValueError)

    def test_non_object_line_names_file_and_line(self, tmp_path):
        path = self._suite(tmp_path, ['[1, 2, 3]', '{"source": "x"}'])
        with pytest.raises(SuiteFormatError, match=":1: expected a JSON "
                                                  "object"):
            list(SuiteSource(path))

    def test_record_without_source_names_file_and_line(self, tmp_path):
        path = self._suite(tmp_path, ['{"name": "missing-body"}'])
        with pytest.raises(SuiteFormatError, match=":1: .*'source'"):
            list(SuiteSource(path))


class TestStoreReplay:
    def test_replays_exactly_the_stored_tests(self, tmp_path):
        corpus = ListSource(
            [build_test(get_shape("LB"), "rlx", name="LB001"),
             build_test(get_shape("MP"), "rlx", name="MP001"),
             build_test(get_shape("SB"), "rlx", name="SB001")]
        )
        path = tmp_path / "campaign.jsonl"
        store = CampaignStore(path)
        # run a campaign over a strict subset of the corpus
        plan = CampaignPlan(tests=list(corpus)[:2], arches=("aarch64",),
                            opts=("-O3",), compilers=("llvm",))
        Session(store=store).campaign(plan).report()

        replay = StoreReplaySource(CampaignStore(path), corpus)
        names = [t.name for t in replay]
        assert names == ["LB001", "MP001"]  # SB001 never ran

        # verdict filtering: replay only the positives (fig7-style LB at
        # -O3 on AArch64 is positive; MP under rc11 is not)
        positives = StoreReplaySource(
            CampaignStore(path), corpus, verdicts=("positive",)
        )
        assert [t.name for t in positives] == ["LB001"]

    def test_round_trip_through_a_campaign(self, tmp_path):
        """store → replay source → campaign runs only the replayed set."""
        corpus = DiySource(small_config())
        path = tmp_path / "campaign.jsonl"
        plan = CampaignPlan(tests=corpus, arches=("aarch64",),
                            opts=("-O2",), compilers=("llvm",))
        Session(store=CampaignStore(path)).campaign(plan).report()

        replay = StoreReplaySource(CampaignStore(path), corpus)
        replay_plan = CampaignPlan(tests=replay, arches=("aarch64",),
                                   opts=("-O2",), compilers=("llvm",))
        report = Session().campaign(replay_plan).report()
        assert report.tests_input == len(list(corpus))


class TestPlanAcceptance:
    def test_source_plan_equals_eager_plan(self):
        eager = CampaignPlan(tests=list(DiySource(small_config())),
                             arches=("aarch64",), opts=("-O2",),
                             compilers=("llvm",))
        streamed = CampaignPlan(tests=DiySource(small_config()),
                                arches=("aarch64",), opts=("-O2",),
                                compilers=("llvm",))
        a = Session().campaign(eager).report()
        b = Session().campaign(streamed).report()
        assert json.dumps(a.to_jsonable(include_timing=False),
                          sort_keys=True) == json.dumps(
            b.to_jsonable(include_timing=False), sort_keys=True
        )

    def test_session_shapes_thread_into_sources(self):
        """A source with no bound registry resolves shape names against
        the session overlay the engine passes."""
        session = Session()
        session.register_shape(lb_chain(5))
        source = DiySource(DiyConfig(shapes=("LB5",), orders=("rlx",),
                                     fences=(None,), deps=("po",)))
        plan = CampaignPlan(tests=source, arches=("aarch64",),
                            opts=("-O2",), compilers=("llvm",))
        report = session.campaign(plan).report()
        assert report.tests_input == 1
        # the same source fails in a session that lacks the shape
        with pytest.raises(Exception, match="LB5"):
            Session().campaign(plan).report()

    def test_as_source_coercion(self):
        assert isinstance(as_source(None), DiySource)
        assert isinstance(as_source([]), ListSource)
        paper = PaperSource()
        assert as_source(paper) is paper
        assert isinstance(
            as_source(None, config=small_config()), DiySource
        )

    def test_differential_plan_accepts_sources(self):
        plan = CampaignPlan(
            tests=PaperSource(names=("fig7_lb",)),
            mode="differential",
            profiles=("llvm-O1-AArch64", "llvm-O3-AArch64"),
        )
        report = Session().campaign(plan).report()
        assert report.compiled_tests == 1

    def test_sharded_run_resolves_source_once(self, monkeypatch):
        calls = []
        real = diy_mod.iter_generate

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(diy_mod, "iter_generate", counting)
        # DiySource.iter_tests late-binds through the module attribute
        monkeypatch.setattr(
            "repro.tools.sources.iter_generate", counting
        )
        plan = CampaignPlan(tests=DiySource(small_config()),
                            arches=("aarch64",), opts=("-O2",),
                            compilers=("llvm",))
        Session().campaign_sharded(plan, 3).report()
        assert len(calls) == 1  # resolved once, shared by all shards
