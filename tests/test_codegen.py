"""Tests for code generation: atomics mappings, PIC/spill traffic, bugs."""

import pytest

from repro.compiler import (
    compile_program,
    disassemble,
    link_layout,
    lower,
    make_profile,
)
from repro.compiler import bugs
from repro.core.errors import CompilationError
from repro.lang import parse_c_litmus
from repro.papertests import fig1_exchange, fig7_lb, fig10_mp_rmw
from repro.tools.l2c import prepare


def compile_text(litmus, profile):
    """Compiled mnemonics per thread as a single lowercase string."""
    unit = compile_program(lower(litmus), profile)
    return {
        t.name: " ; ".join(i.text for i in t.instructions).lower()
        for t in unit.threads
    }


MP_ORDERS = """
C mp_orders
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_release);
  atomic_store_explicit(y, 1, memory_order_seq_cst);
}
void P1(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(y, memory_order_acquire);
  int r1 = atomic_load_explicit(x, memory_order_seq_cst);
  atomic_store_explicit(y, r0, memory_order_relaxed);
}
exists (P1:r0=0)
"""

FENCES = """
C fences
{ *x = 0; }
void P0(atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_thread_fence(memory_order_acquire);
  atomic_thread_fence(memory_order_seq_cst);
}
exists (x=1)
"""

RMW = """
C rmw
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_acq_rel);
  atomic_store_explicit(x, r0, memory_order_relaxed);
}
exists (x=0)
"""


class TestAArch64Mapping:
    def test_acquire_load_is_ldar(self):
        text = compile_text(parse_c_litmus(MP_ORDERS), make_profile("llvm", "-O2", "aarch64"))
        assert "ldar" in text["P1"]

    def test_rcpc_uses_ldapr(self):
        profile = make_profile("llvm", "-O2", "aarch64", rcpc=True)
        text = compile_text(parse_c_litmus(MP_ORDERS), profile)
        assert "ldapr" in text["P1"]

    def test_seq_cst_load_still_ldar_under_rcpc(self):
        profile = make_profile("llvm", "-O2", "aarch64", rcpc=True)
        text = compile_text(parse_c_litmus(MP_ORDERS), profile)
        assert "ldar" in text["P1"]  # the seq_cst load of x

    def test_release_store_is_stlr(self):
        text = compile_text(parse_c_litmus(MP_ORDERS), make_profile("llvm", "-O2", "aarch64"))
        assert "stlr" in text["P0"]

    def test_fence_mnemonics(self):
        text = compile_text(parse_c_litmus(FENCES), make_profile("llvm", "-O2", "aarch64"))
        assert "dmb ishld" in text["P0"] and "dmb ish ;" in text["P0"] + " ;"

    def test_lse_rmw_is_single_instruction(self):
        text = compile_text(parse_c_litmus(RMW), make_profile("llvm", "-O2", "aarch64"))
        assert "ldaddal" in text["P0"]
        assert "ldxr" not in text["P0"]

    def test_no_lse_rmw_is_exclusive_loop(self):
        profile = make_profile("llvm", "-O2", "aarch64", lse=False)
        text = compile_text(parse_c_litmus(RMW), profile)
        assert "ldaxr" in text["P0"] and "stlxr" in text["P0"] and "cbnz" in text["P0"]


class TestStFormSelection:
    def test_buggy_epoch_emits_st_form(self):
        profile = make_profile("llvm", "-O2", "aarch64", version=11)
        text = compile_text(prepare(fig10_mp_rmw()), profile)
        assert "stadd" in text["P1"]

    def test_fixed_epoch_keeps_destination(self):
        profile = make_profile("llvm", "-O2", "aarch64", version=16)
        text = compile_text(prepare(fig10_mp_rmw()), profile)
        assert "stadd" not in text["P1"]
        assert "ldadd" in text["P1"]

    def test_fixed_epoch_uses_st_form_when_sound(self):
        """Relaxed unused RMW with no later acquire context: STADD is fine
        and current compilers do emit it."""
        source = """
C t
{ *x = 0; }
void P0(atomic_int* x) {
  atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
exists (x=1)
"""
        profile = make_profile("llvm", "-O2", "aarch64", version=17)
        text = compile_text(parse_c_litmus(source), profile)
        assert "stadd" in text["P0"]

    def test_exchange_bug_epochs(self):
        buggy = make_profile("llvm", "-O2", "aarch64", version=16)
        fixed = make_profile("llvm", "-O2", "aarch64", version=17)
        assert "swpl w" in compile_text(prepare(fig1_exchange()), buggy)["P1"]
        fixed_text = compile_text(prepare(fig1_exchange()), fixed)["P1"]
        # fixed: SWP keeps a real destination register
        assert "swpl" in fixed_text and ", wzr," not in fixed_text


class TestOtherBackends:
    def test_armv7_brackets_with_dmb(self):
        text = compile_text(parse_c_litmus(MP_ORDERS), make_profile("llvm", "-O2", "armv7"))
        assert "dmb ish" in text["P0"] and "dmb ish" in text["P1"]
        assert "ldrex" not in text["P1"]  # plain loads, not exclusives

    def test_armv7_rmw_loop(self):
        text = compile_text(parse_c_litmus(RMW), make_profile("gcc", "-O2", "armv7"))
        assert "ldrex" in text["P0"] and "strex" in text["P0"]

    def test_x86_plain_movs(self):
        text = compile_text(parse_c_litmus(MP_ORDERS), make_profile("llvm", "-O2", "x86_64"))
        assert "mfence" not in text["P1"]  # loads need nothing on TSO

    def test_x86_seq_cst_store_llvm_vs_gcc(self):
        llvm = compile_text(parse_c_litmus(MP_ORDERS), make_profile("llvm", "-O2", "x86_64"))
        gcc = compile_text(parse_c_litmus(MP_ORDERS), make_profile("gcc", "-O2", "x86_64"))
        assert "xchg" in llvm["P0"]
        assert "mfence" in gcc["P0"]

    def test_x86_rmw(self):
        text = compile_text(parse_c_litmus(RMW), make_profile("llvm", "-O2", "x86_64"))
        assert "lock xadd" in text["P0"]

    def test_riscv_fences_and_amo(self):
        text = compile_text(parse_c_litmus(MP_ORDERS), make_profile("llvm", "-O2", "riscv64"))
        assert "fence r,rw" in text["P1"]
        text_rmw = compile_text(parse_c_litmus(RMW), make_profile("llvm", "-O2", "riscv64"))
        assert "amoadd.w.aqrl" in text_rmw["P0"]

    def test_ppc_sync_lwsync(self):
        text = compile_text(parse_c_litmus(MP_ORDERS), make_profile("gcc", "-O2", "ppc64"))
        assert "lwsync" in text["P0"] and "sync" in text["P0"]
        assert "lwarx" in compile_text(parse_c_litmus(RMW), make_profile("gcc", "-O2", "ppc64"))["P0"]

    def test_mips_brackets_every_atomic_in_sync(self):
        text = compile_text(parse_c_litmus(MP_ORDERS), make_profile("gcc", "-O2", "mips64"))
        # two atomic stores -> at least four syncs on P0
        assert text["P0"].count("sync") >= 4

    def test_unknown_arch_rejected(self):
        with pytest.raises(CompilationError):
            make_profile("llvm", "-O2", "sparc")


class TestPicAndSpills:
    def test_pic_emits_got_loads(self):
        profile = make_profile("llvm", "-O2", "aarch64", pic=True)
        unit = compile_program(lower(fig7_lb()), profile)
        assert any("got_" in (i.symbol or "") for t in unit.threads
                   for i in t.instructions)

    def test_nonpic_direct_addresses(self):
        profile = make_profile("llvm", "-O2", "aarch64", pic=False)
        unit = compile_program(lower(fig7_lb()), profile)
        assert not any("got_" in (i.symbol or "") for t in unit.threads
                       for i in t.instructions)

    def test_o0_spills_to_stack(self):
        profile = make_profile("llvm", "-O0", "aarch64")
        unit = compile_program(lower(fig7_lb()), profile)
        assert unit.threads[0].stack_size > 0
        assert any(i.addr_reg == "sp" for i in unit.threads[0].instructions)

    def test_o1_no_spills(self):
        profile = make_profile("llvm", "-O1", "aarch64")
        unit = compile_program(lower(fig7_lb()), profile)
        assert unit.threads[0].stack_size == 0

    def test_o0_rematerialises_addresses(self):
        """At -O0 every access re-runs the ADRP/GOT sequence; -O1 caches."""
        o0 = compile_program(lower(fig7_lb()), make_profile("llvm", "-O0", "aarch64"))
        o1 = compile_program(lower(fig7_lb()), make_profile("llvm", "-O1", "aarch64"))
        count = lambda unit: sum(
            1 for t in unit.threads for i in t.instructions if i.symbol
        )
        assert count(o0) >= count(o1)

    def test_debug_map_reflects_local_liveness(self):
        """Unaugmented at -O1+, the unused local r0 is deleted and has no
        debug location (§IV-B).  At -O0 it lives in its stack slot and is
        reloaded into a register for observation."""
        bare = compile_program(
            lower(fig7_lb()), make_profile("llvm", "-O1", "aarch64")
        )
        assert "r0" not in bare.threads[0].reg_of_observed
        debug = compile_program(
            lower(fig7_lb()), make_profile("llvm", "-O0", "aarch64")
        )
        assert "r0" in debug.threads[0].reg_of_observed

    def test_augmented_observability_flows_through_global(self):
        """After l2c augmentation the observable survives optimisation as
        a store to ``out_P0_r0`` even when the register copy is gone."""
        profile = make_profile("llvm", "-O1", "aarch64")
        unit = compile_program(lower(prepare(fig7_lb())), profile)
        # some store in P0 targets the out-global's GOT slot or symbol
        symbols = {
            i.symbol for i in unit.threads[0].instructions if i.symbol
        }
        assert any("out_P0_r0" in (s or "") for s in symbols)
