"""Tests for the staged solver engine across its four layers:

* the ExecutionEnumerator's pruning stages (soundness: pruning never
  changes an outcome set, only the work),
* compiled Cat models (static prefix / dynamic suffix split),
* the Budget deadline semantics,
* the campaign's source-simulation and result caches + worker pool.
"""

import time

import pytest

from repro.cat import build_env, get_model, list_models
from repro.cat.interp import DYNAMIC_BASE_NAMES, Model
from repro.cat.stdlib import build_static_env, dynamic_bindings
from repro.core.errors import SimulationTimeout
from repro.herd import (
    Budget,
    CoherenceStage,
    EnumerationStats,
    ExecutionEnumerator,
    default_stages,
    exhaustive_stages,
    simulate_c,
)
from repro.lang import parse_c_litmus
from repro.lang.semantics import elaborate
from repro.papertests import fig7_lb, fig10_mp_rmw, fig11_lb3
from repro.pipeline.campaign import ResultCache, SourceSimCache, run_campaign
from repro.tools.diy import DiyConfig

COWW = """
C coww
{ *x = 0; }
void P0(atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_store_explicit(x, 2, memory_order_relaxed);
}
void P1(atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  int r1 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=2 /\\ P1:r1=1)
"""

CORW = """
C corw
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
void P1(atomic_int* x) {
  atomic_store_explicit(x, 2, memory_order_relaxed);
}
exists (P0:r0=2)
"""


def _enumerate(litmus, stages):
    stats = EnumerationStats()
    enumerator = ExecutionEnumerator(
        dict(litmus.init), elaborate(litmus), stats=stats, stages=stages
    )
    return list(enumerator), stats


class TestPruningSoundness:
    """Pruned enumeration must agree with brute force on every outcome,
    under every registered model."""

    @pytest.mark.parametrize(
        "source_fn",
        [fig7_lb, fig10_mp_rmw, fig11_lb3,
         lambda: parse_c_litmus(COWW), lambda: parse_c_litmus(CORW)],
    )
    def test_same_outcomes_fewer_candidates_rc11(self, source_fn):
        litmus = source_fn()
        staged = simulate_c(litmus, "rc11")
        brute = simulate_c(litmus, "rc11", stages=exhaustive_stages())
        assert staged.outcomes == brute.outcomes
        assert staged.flags == brute.flags
        assert staged.stats.candidates <= brute.stats.candidates

    @pytest.mark.parametrize("model", sorted(list_models()))
    def test_same_outcomes_under_every_model(self, model):
        litmus = parse_c_litmus(COWW)
        staged = simulate_c(litmus, model)
        brute = simulate_c(litmus, model, stages=exhaustive_stages())
        assert staged.outcomes == brute.outcomes

    def test_coww_prunes_coherence_prefixes(self):
        """Two same-thread writes to one location leave exactly one
        feasible coherence order; brute force tries both."""
        litmus = parse_c_litmus(COWW)
        staged_cands, staged_stats = _enumerate(litmus, default_stages())
        brute_cands, brute_stats = _enumerate(litmus, exhaustive_stages())
        assert staged_stats.candidates < brute_stats.candidates
        assert staged_stats.total_pruned > 0
        staged_finals = {c.finals for c in staged_cands}
        # every staged candidate also appears under brute force
        assert staged_finals <= {c.finals for c in brute_cands}

    def test_corr_never_reads_backwards(self):
        """CoRR: po-ordered reads never observe coherence-reversed
        writes in any surviving candidate."""
        litmus = parse_c_litmus(COWW)
        result = simulate_c(litmus, "sc")
        for outcome in result.outcomes:
            data = outcome.as_dict()
            # r0=2 then r1=1 would read the coherence order backwards
            assert not (data["P1:r0"] == 2 and data["P1:r1"] == 1)

    def test_stage_counters_recorded(self):
        litmus = fig11_lb3()
        result = simulate_c(litmus, "rc11")
        stats = result.stats.as_dict()
        assert stats["total_pruned"] == result.stats.total_pruned
        assert result.stats.rf_assignments > 0

    def test_custom_stage_plugs_in(self):
        class VetoEverything(CoherenceStage):
            name = "veto"

            def reject_assignment(self, combo, rf_map, values, stats):
                stats.rejected_constraint += 1
                return True

        litmus = fig7_lb()
        stats = EnumerationStats()
        enumerator = ExecutionEnumerator(
            dict(litmus.init), elaborate(litmus),
            stats=stats, stages=(VetoEverything(),),
        )
        assert list(enumerator) == []
        assert stats.rejected_constraint == stats.rf_assignments > 0


class TestCompiledModels:
    @pytest.mark.parametrize("name", sorted(list_models()))
    def test_split_covers_all_statements(self, name):
        model = get_model(name)
        compiled = model.compile()
        assert len(compiled.static_statements) + len(
            compiled.dynamic_statements
        ) == len(model.ast.statements)
        # compilation is cached
        assert model.compile() is compiled

    @pytest.mark.parametrize("name", ["rc11", "aarch64", "x86tso", "ppc"])
    def test_models_have_nontrivial_static_prefix(self, name):
        compiled = get_model(name).compile()
        assert compiled.static_statements  # fences/deps bindings at least
        assert compiled.dynamic_statements  # rf/co checks always dynamic

    @pytest.mark.parametrize("name", sorted(list_models()))
    def test_compiled_agrees_with_interpreted(self, name):
        """Static-prefix + dynamic-suffix evaluation must be observably
        identical to whole-model evaluation."""
        model = get_model(name)
        compiled = model.compile()
        litmus = fig7_lb()
        result = simulate_c(litmus, "sc", keep_executions=True)
        assert result.executions
        for execution, _ in result.executions:
            whole = model.evaluate(build_env(execution))
            static = build_static_env(
                execution.events, execution.po, execution.rmw,
                execution.addr, execution.data, execution.ctrl,
            )
            prefix = compiled.run_static(static.env)
            split = compiled.run_dynamic(
                prefix, dynamic_bindings(execution, static)
            )
            assert split.allowed == whole.allowed
            assert sorted(split.flags) == sorted(whole.flags)
            assert {(c.name, c.passed) for c in split.checks} == {
                (c.name, c.passed) for c in whole.checks
            }

    def test_dynamic_suffix_names(self):
        """A model binding only po-derived names is fully static except
        its rf/co checks."""
        model = Model.from_source(
            "TEST\n"
            "let fences = fencerel(F)\n"
            "let order = po | fences\n"
            "acyclic order as static-check\n"
            "let hb = order | rf\n"
            "acyclic hb as dynamic-check\n"
        )
        compiled = model.compile()
        static_checks = [
            s for s in compiled.static_statements if hasattr(s, "kind")
        ]
        dynamic_checks = [
            s for s in compiled.dynamic_statements if hasattr(s, "kind")
        ]
        assert [c.name for c in static_checks] == ["static-check"]
        assert [c.name for c in dynamic_checks] == ["dynamic-check"]

    def test_dynamic_base_names_match_stdlib(self):
        litmus = fig7_lb()
        result = simulate_c(litmus, "sc", keep_executions=True)
        execution, _ = result.executions[0]
        assert set(dynamic_bindings(execution)) == set(DYNAMIC_BASE_NAMES)


class TestBudgetSemantics:
    def test_deadline_measured_from_first_use(self):
        """A Budget built long before use must not be born expired."""
        budget = Budget(deadline_seconds=0.05)
        time.sleep(0.08)  # older than its own deadline
        budget.check(1)  # first use: starts the clock — no timeout
        with pytest.raises(SimulationTimeout):
            time.sleep(0.08)
            budget.check(2)

    def test_reset_restarts_clock(self):
        budget = Budget(deadline_seconds=0.05)
        budget.check(1)
        time.sleep(0.08)
        budget.reset()
        budget.check(2)  # fresh clock: no timeout

    def test_enumeration_resets_budget(self):
        budget = Budget(deadline_seconds=5.0)
        budget._start = time.perf_counter() - 100.0  # poisoned clock
        litmus = fig7_lb()
        result = simulate_c(litmus, "rc11", budget=budget)  # no timeout
        assert result.outcomes


class TestCampaignCaches:
    CONFIG = DiyConfig(
        shapes=("LB",), orders=("rlx",), fences=(None,),
        deps=("po",), variants=("load-store",),
    )

    def test_source_simulated_exactly_once_per_model(self):
        cache = SourceSimCache()
        report = run_campaign(
            config=self.CONFIG, arches=("aarch64", "x86_64"),
            opts=("-O1", "-O2"), compilers=("llvm", "gcc"),
            source_cache=cache,
        )
        assert report.tests_input > 0
        assert report.source_simulations == report.tests_input
        assert cache.simulations == report.tests_input
        # 8 cells per test consumed the cached source
        assert cache.hits == report.compiled_tests - cache.misses

    def test_result_cache_skips_repeat_cells(self):
        source_cache, result_cache = SourceSimCache(), ResultCache()
        first = run_campaign(
            config=self.CONFIG, arches=("aarch64",), opts=("-O2",),
            compilers=("llvm",),
            source_cache=source_cache, result_cache=result_cache,
        )
        again = run_campaign(
            config=self.CONFIG, arches=("aarch64",), opts=("-O2",),
            compilers=("llvm",),
            source_cache=source_cache, result_cache=result_cache,
        )
        assert again.source_simulations == 0
        assert again.cached_cells == again.compiled_tests > 0
        assert again.cells.keys() == first.cells.keys()
        for key, cell in again.cells.items():
            assert cell.positive == first.cells[key].positive
            assert cell.negative == first.cells[key].negative

    def test_worker_pool_is_deterministic(self):
        serial = run_campaign(
            config=self.CONFIG, arches=("aarch64", "armv7"),
            opts=("-O2",), compilers=("llvm",),
        )
        threaded = run_campaign(
            config=self.CONFIG, arches=("aarch64", "armv7"),
            opts=("-O2",), compilers=("llvm",), workers=4,
        )
        assert threaded.workers == 4
        assert threaded.positives == serial.positives
        assert threaded.source_simulations == serial.source_simulations
        for key, cell in serial.cells.items():
            other = threaded.cells[key]
            assert (cell.positive, cell.negative, cell.equal) == (
                other.positive, other.negative, other.equal
            )

    def test_cache_replays_errors(self):
        from repro.core.errors import ReproError

        cache = ResultCache()
        calls = []

        def explode():
            calls.append(1)
            raise ReproError("boom")

        for _ in range(2):
            with pytest.raises(ReproError):
                cache.get("k", explode)
        assert len(calls) == 1
        assert cache.misses == 1 and cache.hits == 1

    def test_telechat_source_reuse_flag(self):
        from repro.compiler import make_profile
        from repro.pipeline import test_compilation
        from repro.tools.l2c import prepare

        litmus = fig7_lb()
        profile = make_profile("llvm", "-O3", "aarch64")
        source = simulate_c(prepare(litmus, augment=True), "rc11")
        hoisted = test_compilation(litmus, profile, source_result=source)
        inline = test_compilation(litmus, profile)
        assert hoisted.source_reused and not inline.source_reused
        assert hoisted.verdict == inline.verdict
        # a hoisted source simulation reports the *original* run's cost,
        # not zero — campaign timing totals must not under-report
        assert hoisted.source_seconds == source.elapsed_seconds > 0.0
