"""Tests for compiler profiles, epochs and the bug-injection registry."""

import pytest

from repro.compiler import bugs
from repro.compiler.profiles import (
    ARCHES,
    GCC_OPT_LEVELS,
    LLVM_OPT_LEVELS,
    CompilerProfile,
    default_profiles,
    make_profile,
)
from repro.core.errors import CompilationError


class TestProfiles:
    def test_name_follows_artefact_convention(self):
        profile = make_profile("llvm", "-O3", "aarch64")
        assert profile.name == "llvm-O3-AArch64"
        assert make_profile("gcc", "-O1", "riscv64").name == "gcc-O1-RISC-V"

    def test_clang_rejects_og(self):
        """Table IV: 'clang does not support -Og flag'."""
        with pytest.raises(CompilationError):
            make_profile("llvm", "-Og", "aarch64")
        make_profile("gcc", "-Og", "aarch64")  # fine for gcc

    def test_unknown_compiler_rejected(self):
        with pytest.raises(CompilationError):
            make_profile("icc", "-O2", "x86_64")

    def test_unknown_epoch_rejected(self):
        with pytest.raises(CompilationError):
            make_profile("llvm", "-O2", "aarch64", version=99)

    def test_opt_rank_ordering(self):
        ranks = [make_profile("gcc", opt, "aarch64").opt_rank
                 for opt in ("-O0", "-Og", "-O1", "-O2", "-O3", "-Ofast")]
        assert ranks == [0, 0, 1, 2, 3, 3]

    def test_lse_default_only_on_aarch64(self):
        assert make_profile("llvm", "-O2", "aarch64").lse
        assert not make_profile("llvm", "-O2", "riscv64").lse

    def test_arch_extensions_gated_to_aarch64(self):
        profile = make_profile("llvm", "-O2", "x86_64", rcpc=True, v84=True)
        assert not profile.rcpc and not profile.v84

    def test_with_without_bugs(self):
        profile = make_profile("llvm", "-O2", "aarch64", version=17)
        buggy = profile.with_bugs(bugs.RMW_ST_FORM)
        assert buggy.has_bug(bugs.RMW_ST_FORM)
        assert not buggy.without_bugs(bugs.RMW_ST_FORM).has_bug(bugs.RMW_ST_FORM)

    def test_default_profiles_cover_campaign_levels(self):
        profiles = default_profiles("aarch64")
        names = {p.name for p in profiles}
        assert "llvm-O1-AArch64" in names and "gcc-Og-AArch64" in names
        assert not any(p.opt == "-O0" for p in profiles)

    def test_epoch_bug_assignments(self):
        """The bug history matrix of DESIGN.md §5."""
        llvm11 = make_profile("llvm", "-O2", "aarch64", version=11)
        assert llvm11.has_bug(bugs.RMW_ST_FORM)
        assert llvm11.has_bug(bugs.XCHG_DROP_READ)
        assert llvm11.has_bug(bugs.ATOMIC_128_VIA_LOOP)

        llvm16 = make_profile("llvm", "-O2", "aarch64", version=16)
        assert not llvm16.has_bug(bugs.RMW_ST_FORM)       # fixed
        assert llvm16.has_bug(bugs.XCHG_DROP_READ)        # reported by paper
        assert llvm16.has_bug(bugs.LDP_SEQCST_UNORDERED)  # reported by paper
        assert llvm16.has_bug(bugs.STP_WRONG_ENDIAN)      # reported by paper

        gcc12 = make_profile("gcc", "-O2", "aarch64", version=12)
        assert not gcc12.has_bug(bugs.RMW_ST_FORM)

        llvm17 = make_profile("llvm", "-O2", "aarch64", version=17)
        assert not llvm17.bug_flags

    def test_profile_is_frozen(self):
        profile = make_profile("llvm", "-O2", "aarch64")
        with pytest.raises(Exception):
            profile.opt = "-O0"  # type: ignore[misc]


class TestBugRegistry:
    def test_every_bug_described(self):
        for flag in bugs.ALL_BUGS:
            text = bugs.describe(flag)
            assert text and text != flag

    def test_describe_unknown_passthrough(self):
        assert bugs.describe("not-a-bug") == "not-a-bug"

    def test_paper_references_present(self):
        assert "68428" in bugs.describe(bugs.XCHG_DROP_READ)
        assert "62652" in bugs.describe(bugs.LDP_SEQCST_UNORDERED)
        assert "61431" in bugs.describe(bugs.STP_WRONG_ENDIAN)
        assert "61770" in bugs.describe(bugs.ATOMIC_128_VIA_LOOP)
