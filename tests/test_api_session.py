"""The repro.api surface: sessions, plans, the event stream, and the
stream↔batch parity guarantee."""

import json
import warnings

import pytest

from repro.api import (
    CampaignFinished,
    CampaignPlan,
    CampaignStarted,
    CellFinished,
    PlanError,
    Session,
    ShardMerged,
    fold_events,
)
from repro.cat.registry import MODELS, get_source
from repro.pipeline.campaign import ResultCache, SourceSimCache, run_campaign
from repro.tools.diy import DiyConfig, build_test, get_shape

CONFIG = DiyConfig(
    shapes=("LB",), orders=("rlx",), fences=(None,),
    deps=("po", "ctrl2"), variants=("load-store",),
)

PLAN = CampaignPlan(
    config=CONFIG, arches=("aarch64", "x86_64"), opts=("-O1", "-O2"),
    compilers=("llvm", "gcc"),
)


def report_bytes(report):
    """The canonical byte string the parity guarantee is stated in."""
    return json.dumps(
        report.to_jsonable(include_timing=False), sort_keys=True
    ).encode()


def legacy_run(**kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return run_campaign(
            config=CONFIG, arches=PLAN.arches, opts=PLAN.opts,
            compilers=PLAN.compilers, **kwargs,
        )


# --------------------------------------------------------------------------- #
# plan validation
# --------------------------------------------------------------------------- #
class TestPlanValidation:
    def test_bad_shard(self):
        with pytest.raises(PlanError, match="bad shard"):
            CampaignPlan(shard=(5, 2))
        with pytest.raises(PlanError, match="bad shard"):
            CampaignPlan(shard=(-1, 4))
        with pytest.raises(PlanError, match="bad shard"):
            CampaignPlan(shard=(0, 0))

    def test_plan_error_is_a_value_error(self):
        """Legacy callers catch ValueError; the plan keeps that contract."""
        with pytest.raises(ValueError):
            CampaignPlan(shard=(2, 2))

    def test_resume_without_store(self):
        with pytest.raises(PlanError, match="needs a store"):
            Session().campaign(CampaignPlan(config=CONFIG, resume=True))

    def test_process_pool_with_in_memory_caches(self):
        session = Session(result_cache=ResultCache())
        with pytest.raises(PlanError, match="not shared with worker"):
            session.campaign(CampaignPlan(config=CONFIG, processes=2))
        session = Session(source_cache=SourceSimCache())
        with pytest.raises(PlanError, match="not shared with worker"):
            session.campaign(CampaignPlan(config=CONFIG, processes=2))

    def test_structural_bounds(self):
        with pytest.raises(PlanError, match="workers"):
            CampaignPlan(workers=0)
        with pytest.raises(PlanError, match="processes"):
            CampaignPlan(processes=-1)
        with pytest.raises(PlanError, match="budget_candidates"):
            CampaignPlan(budget_candidates=0)
        with pytest.raises(PlanError, match="at least one architecture"):
            CampaignPlan(arches=())
        with pytest.raises(PlanError, match="at least one compiler"):
            CampaignPlan(compilers=())
        with pytest.raises(PlanError, match="at least one optimisation"):
            CampaignPlan(opts=())

    def test_sequences_coerced_to_tuples(self):
        plan = CampaignPlan(arches=["aarch64"], opts=["-O2"],
                            compilers=["llvm"], shard=[0, 2])
        assert plan.arches == ("aarch64",)
        assert plan.shard == (0, 2)

    def test_split(self):
        shards = PLAN.split(3)
        assert [p.shard for p in shards] == [(0, 3), (1, 3), (2, 3)]
        with pytest.raises(PlanError, match="already"):
            shards[0].split(2)

    def test_with_model(self):
        assert PLAN.with_model("rc11+lb").source_model == "rc11+lb"
        assert PLAN.source_model == "rc11"  # frozen: original untouched

    def test_describe_is_jsonable(self):
        json.dumps(PLAN.describe())


# --------------------------------------------------------------------------- #
# the event stream
# --------------------------------------------------------------------------- #
class TestEventStream:
    @pytest.fixture(scope="class")
    def events(self):
        return list(Session().campaign(PLAN))

    def test_stream_grammar(self, events):
        assert isinstance(events[0], CampaignStarted)
        assert isinstance(events[-1], CampaignFinished)
        cells = events[1:-1]
        assert cells and all(isinstance(e, CellFinished) for e in cells)
        assert events[0].cells_total == len(cells)
        assert sorted(e.index for e in cells) == list(range(len(cells)))

    def test_cell_events_carry_records(self, events):
        cell = next(e for e in events if isinstance(e, CellFinished))
        assert cell.status in ("ok", "timeout", "error")
        assert cell.record["digest"] == cell.digest
        assert cell.verdict in ("positive", "negative", "equal", "ub-masked")

    def test_events_are_jsonable(self, events):
        for event in events:
            json.dumps(event.as_dict())

    def test_fold_matches_stream_report(self, events):
        session_report = Session().campaign(PLAN).report()
        assert report_bytes(fold_events(events)) == report_bytes(session_report)

    def test_partial_consumption_then_report(self):
        stream = Session().campaign(PLAN)
        consumed = [next(iter(stream))]
        assert isinstance(consumed[0], CampaignStarted)
        report = stream.report()  # drains the rest, loses nothing
        assert report.tests_input == consumed[0].tests_input
        assert sum(c.total for c in report.cells.values()) > 0

    def test_fold_of_incomplete_stream_raises(self):
        with pytest.raises(ValueError, match="incomplete"):
            fold_events([CampaignStarted()])

    def test_early_exit_is_cheap(self):
        """A fuzzing loop can stop at the first positive: unconsumed
        cells are never simulated."""
        session = Session()
        stream = session.campaign(PLAN)
        started = None
        for event in stream:
            if isinstance(event, CampaignStarted):
                started = event
            if isinstance(event, CellFinished) and event.verdict == "positive":
                break
        assert started is not None
        # only the cells up to the first positive were evaluated
        assert len(session.result_cache) < started.cells_total
        assert session.source_cache.misses < started.tests_input

    def test_early_exit_cancels_queued_pool_work(self):
        """Abandoning a parallel stream cancels the queued cells: pool
        shutdown waits only for what is already running."""
        session = Session()
        plan = CampaignPlan(config=CONFIG, arches=PLAN.arches,
                            opts=PLAN.opts, compilers=PLAN.compilers,
                            workers=2)
        started = None
        for event in session.campaign(plan):
            if isinstance(event, CampaignStarted):
                started = event
            if isinstance(event, CellFinished):
                break
        # at most: the consumed cell + the <= workers cells in flight
        # when the stream was closed (the rest were cancelled)
        assert len(session.result_cache) < started.cells_total // 2


# --------------------------------------------------------------------------- #
# stream ↔ batch parity (the acceptance bar)
# --------------------------------------------------------------------------- #
class TestParity:
    @pytest.fixture(scope="class")
    def legacy_serial(self):
        return legacy_run()

    def test_serial_parity(self, legacy_serial):
        folded = Session().campaign(PLAN).report()
        assert report_bytes(folded) == report_bytes(legacy_serial)

    def test_thread_parity(self):
        plan = CampaignPlan(
            config=CONFIG, arches=PLAN.arches, opts=PLAN.opts,
            compilers=PLAN.compilers, workers=4,
        )
        folded = Session().campaign(plan).report()
        assert report_bytes(folded) == report_bytes(legacy_run(workers=4))

    def test_process_parity(self):
        plan = CampaignPlan(
            config=CONFIG, arches=PLAN.arches, opts=PLAN.opts,
            compilers=PLAN.compilers, processes=2,
        )
        folded = Session().campaign(plan).report()
        assert report_bytes(folded) == report_bytes(legacy_run(processes=2))

    def test_serial_thread_process_agree(self, legacy_serial):
        """All three backends fold to the identical Table IV bytes."""
        serial = Session().campaign(PLAN).report()
        threaded = Session().campaign(
            CampaignPlan(config=CONFIG, arches=PLAN.arches, opts=PLAN.opts,
                         compilers=PLAN.compilers, workers=3)
        ).report()
        # workers/processes are honest run metadata: mask them before the
        # cross-backend comparison (cells/positives/sims must agree)
        a, b = serial.to_jsonable(include_timing=False), threaded.to_jsonable(include_timing=False)
        a["workers"] = b["workers"] = 0
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_sharded_stream_merges_to_single_run(self):
        session = Session()
        stream = session.campaign_sharded(PLAN, 3)
        events = list(stream)
        merges = [e for e in events if isinstance(e, ShardMerged)]
        assert [e.shard for e in merges] == [(0, 3), (1, 3), (2, 3)]
        merged = stream.report()
        single = Session().campaign(PLAN).report()
        assert {k: vars(v) for k, v in merged.cells.items()} == \
               {k: vars(v) for k, v in single.cells.items()}
        assert sorted(merged.positives) == sorted(single.positives)
        assert merged.source_simulations == single.source_simulations


class TestFarmParity:
    """Blessing the same mini-corpus on every execution backend must
    produce byte-identical baseline files — the farm extension of the
    fold_events parity guarantee (completion order and backend never
    leak into the blessed bytes)."""

    @pytest.fixture(scope="class")
    def corpus_template(self, tmp_path_factory):
        from repro.pipeline.farm import generate_corpus

        root = tmp_path_factory.mktemp("farm-parity") / "corpus"
        generate_corpus(
            root,
            suites={"mini": CONFIG},
            profiles=("llvm-O2-AArch64", "gcc-O1-ARM"),
        )
        return root

    def _bless_bytes(self, corpus_template, tmp_path, **plan_fields):
        import shutil

        from repro.api import FarmPlan

        root = tmp_path / "corpus"
        shutil.copytree(corpus_template, root)
        plan = FarmPlan(root=str(root), bless=True, **plan_fields)
        for event in Session().farm(plan):
            pass
        baseline_dir = root / "baselines"
        return {
            path.name: path.read_bytes()
            for path in sorted(baseline_dir.iterdir())
        }

    def test_backends_bless_identically(self, corpus_template, tmp_path):
        serial = self._bless_bytes(corpus_template, tmp_path / "s")
        threaded = self._bless_bytes(corpus_template, tmp_path / "t",
                                     workers=4)
        pooled = self._bless_bytes(corpus_template, tmp_path / "p",
                                   processes=2)
        assert set(serial) == {
            "mini--gcc-O1-ARM--rc11.jsonl",
            "mini--llvm-O2-AArch64--rc11.jsonl",
        }
        assert serial == threaded
        assert serial == pooled


# --------------------------------------------------------------------------- #
# sessions
# --------------------------------------------------------------------------- #
class TestSession:
    def test_private_model_does_not_leak(self):
        session = Session()
        session.register_model("rc11_mine", get_source("rc11+lb"))
        assert session.model("rc11_mine").name == "rc11_mine"
        assert "rc11_mine" not in MODELS
        assert "rc11_mine" not in Session().models

    def test_shadowing_a_global_model(self):
        """A session can shadow ``rc11`` itself; the globals never see it."""
        session = Session()
        session.register_model("rc11", get_source("rc11+lb"))
        lb = build_test(get_shape("LB"), "rlx", name="LB004")
        shadowed = session.test(lb, ("llvm", "-O3", "aarch64"))
        vanilla = Session().test(lb, ("llvm", "-O3", "aarch64"))
        # under the shadowed (weaker) rc11 the LB outcome is allowed at
        # the source, so the compiled test shows no positive difference
        assert vanilla.found_bug and not shadowed.found_bug

    def test_campaign_under_private_model(self):
        session = Session()
        session.register_model("lb_ok", get_source("rc11+lb"))
        plan = CampaignPlan(config=CONFIG, arches=("aarch64",), opts=("-O2",),
                            compilers=("llvm",), source_model="lb_ok")
        report = session.campaign(plan).report()
        assert report.total_positive() == 0
        assert report.source_model == "lb_ok"

    def test_shadowed_model_never_replays_stale_verdicts(self):
        """Cache identity includes what the model *name* resolves to in
        the session — shadowing ``rc11`` after a campaign re-simulates
        under the new model instead of replaying verdicts computed under
        the global one (the PR 2 content-identity rule, for models)."""
        session = Session()
        plan = CampaignPlan(config=CONFIG, arches=("aarch64",),
                            opts=("-O2",), compilers=("llvm",))
        before = session.run(plan)
        assert before.total_positive() > 0
        session.register_model("rc11", get_source("rc11+lb"))
        after = session.run(plan)
        assert after.total_positive() == 0

    def test_session_isas_populated_in_fresh_interpreter(self):
        """The ISA registry populates by import side effect; the session
        overlay must trigger it even when nothing else has."""
        import os
        import subprocess
        import sys

        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.api import Session; print(Session().isa('aarch64').name)"],
            capture_output=True, text=True, env=env,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "aarch64"

    def test_private_model_refused_by_process_pool(self):
        session = Session()
        session.register_model("lb_ok", get_source("rc11+lb"))
        plan = CampaignPlan(config=CONFIG, arches=("aarch64",), opts=("-O2",),
                            compilers=("llvm",), source_model="lb_ok",
                            processes=2)
        with pytest.raises(PlanError, match="not visible to worker"):
            session.campaign(plan)

    def test_local_guard_sees_through_aliases(self):
        """Shadowing a model and addressing it by a parent-defined alias
        must still trip the process-pool guard."""
        session = Session()
        session.register_model("rc11+lb", get_source("rc11"))
        plan = CampaignPlan(config=CONFIG, arches=("aarch64",), opts=("-O2",),
                            compilers=("llvm",), source_model="RC11-LB",
                            processes=2)
        with pytest.raises(PlanError, match="not visible to worker"):
            session.campaign(plan)

    def test_private_model_refused_by_store(self, tmp_path):
        """Store records key verdicts by name; a session-local model
        behind that name would poison the store."""
        session = Session(store=tmp_path / "s.jsonl")
        session.register_model("rc11", get_source("rc11+lb"))
        plan = CampaignPlan(config=CONFIG, arches=("aarch64",), opts=("-O2",),
                            compilers=("llvm",))
        with pytest.raises(PlanError, match="cannot be keyed"):
            session.campaign(plan)

    def test_session_epochs_drive_campaign_cells(self):
        """A session-registered compiler epoch changes what the campaign
        simulates — validating a compiler fix without touching globals."""
        config = DiyConfig(shapes=("LB",), orders=("rlx",), fences=(None,),
                           deps=("ctrl2",), variants=("load-store",))
        plan = CampaignPlan(config=config, arches=("armv7",), opts=("-O1",),
                            compilers=("gcc",))
        session = Session()
        buggy = session.run(plan)
        assert buggy.total_positive() > 0  # gcc -O1 drops the ctrl dep
        # registering the fixed epoch on the *same* session re-simulates —
        # the epoch's bug set is cache-key identity, not just its name
        session.epochs.register("gcc-12", frozenset())
        assert session.run(plan).total_positive() == 0
        with pytest.raises(PlanError, match="not visible to worker"):
            session.campaign(
                CampaignPlan(config=config, arches=("armv7",), opts=("-O1",),
                             compilers=("gcc",), processes=2)
            )

    def test_session_shapes_drive_generation(self):
        """A session-registered shape is usable from a plan's DiyConfig."""
        from repro.tools.diy import lb_chain

        session = Session()
        session.register_shape(lb_chain(5))
        plan = CampaignPlan(
            config=DiyConfig(shapes=("LB5",), orders=("rlx",), fences=(None,),
                             deps=("po",), variants=("load-store",)),
            arches=("aarch64",), opts=("-O2",), compilers=("llvm",),
        )
        report = session.run(plan)
        assert report.tests_input == 1 and report.compiled_tests == 1
        # the global registry never learns about LB5
        with pytest.raises(Exception, match="unknown shape"):
            Session().run(plan)

    def test_profile_resolution_forms(self):
        session = Session()
        by_tuple = session.profile(("llvm", "-O3", "aarch64"))
        by_name = session.profile("llvm-O3-AArch64")
        assert by_tuple == by_name
        assert session.profile(by_tuple) is by_tuple

    def test_test_by_profile_name(self):
        lb = build_test(get_shape("LB"), "rlx", name="LB004")
        result = Session().test(lb, "llvm-O3-AArch64")
        assert result.found_bug
        assert result.profile.name == "llvm-O3-AArch64"

    def test_session_default_budget(self):
        session = Session(budget_candidates=2)
        lb = build_test(get_shape("LB"), "rlx", name="LB004")
        from repro.core.errors import SimulationTimeout

        with pytest.raises(SimulationTimeout):
            session.test(lb, "llvm-O3-AArch64")

    def test_store_resume_via_session(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        cold = Session(store=path).campaign(PLAN).report()
        assert cold.store_hits == 0
        warm_session = Session(store=path)
        resumed = warm_session.campaign(
            CampaignPlan(config=CONFIG, arches=PLAN.arches, opts=PLAN.opts,
                         compilers=PLAN.compilers, resume=True)
        )
        events = list(resumed)
        assert all(
            e.from_store for e in events if isinstance(e, CellFinished)
        )
        report = resumed.report()
        assert report.store_hits == sum(c.total for c in cold.cells.values())
        assert report.source_simulations == 0  # warm: nothing re-simulated
        assert {k: vars(v) for k, v in report.cells.items()} == \
               {k: vars(v) for k, v in cold.cells.items()}
        assert report.positives == cold.positives


# --------------------------------------------------------------------------- #
# the deprecation shims
# --------------------------------------------------------------------------- #
class TestDeprecationShims:
    def test_run_campaign_warns_external_callers(self):
        with pytest.warns(DeprecationWarning, match="run_campaign"):
            run_campaign(
                tests=[build_test(get_shape("LB"), "rlx", name="LB001")],
                arches=("aarch64",), opts=("-O2",), compilers=("llvm",),
            )

    def test_test_compilation_warns_external_callers(self):
        from repro.pipeline.telechat import test_compilation

        with pytest.warns(DeprecationWarning, match="test_compilation"):
            test_compilation(
                build_test(get_shape("LB"), "rlx", name="LB001"),
                Session().profile("llvm-O2-AArch64"),
            )

    def test_promoted_to_error_inside_repro(self):
        """A shim called from a repro-internal module raises instead of
        warning — internal code cannot depend on what it deprecates."""
        from repro.pipeline.telechat import test_compilation

        fake_internals = {
            "__name__": "repro.pipeline.fake_caller",
            "test_compilation": test_compilation,
        }
        exec(
            "def call_shim(*args, **kwargs):\n"
            "    return test_compilation(*args, **kwargs)\n",
            fake_internals,
        )
        with pytest.raises(DeprecationWarning, match="inside repro"):
            fake_internals["call_shim"](
                build_test(get_shape("LB"), "rlx", name="LB001"),
                Session().profile("llvm-O2-AArch64"),
            )
