"""The rebuilt telechat CLI: exit codes, --json inventories, and the
streaming campaign output."""

import json

import pytest

from repro.papertests import FIG7_SOURCE
from repro.pipeline.cli import main


@pytest.fixture
def lb_file(tmp_path):
    path = tmp_path / "lb.litmus.c"
    path.write_text(FIG7_SOURCE)
    return str(path)


class TestExitCodes:
    def test_positive_verdict_exits_nonzero(self, lb_file, capsys):
        """Shell scripts and CI gate on ``telechat test``: a found bug
        (positive difference) is exit code 1."""
        assert main(["test", lb_file, "--arch", "aarch64"]) == 1
        assert "positive" in capsys.readouterr().out

    def test_clean_verdict_exits_zero(self, lb_file):
        assert main(["test", lb_file, "--arch", "aarch64",
                     "--cmem", "rc11+lb"]) == 0

    def test_campaign_resume_without_store_is_usage_error(self, capsys):
        assert main(["campaign", "--small", "--resume"]) == 2
        assert "--resume needs --store" in capsys.readouterr().err


class TestJsonInventories:
    def test_models_json(self, capsys):
        assert main(["models", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {e["name"]: e for e in entries}
        assert "x86-tso" in by_name["x86tso"]["aliases"]
        assert "c11-partialsc" in by_name["c11_partialsc"]["aliases"]
        assert by_name["rc11"]["doc"]

    def test_shapes_json(self, capsys):
        assert main(["shapes", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {e["name"]: e for e in entries}
        assert by_name["lb"]["display"] == "LB"
        assert by_name["iriw"]["threads"] == 4

    def test_profiles_json(self, capsys):
        assert main(["profiles", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "llvm-O3-AArch64" in payload["profiles"]
        assert any(e["name"] == "llvm-16" for e in payload["epochs"])

    def test_profiles_plain(self, capsys):
        assert main(["profiles"]) == 0
        assert "gcc-Og-ARM" in capsys.readouterr().out


class TestStreamingCampaign:
    def test_json_event_stream(self, capsys):
        assert main(["campaign", "--small", "--arch", "aarch64",
                     "--opt=-O2", "--json", "--no-progress"]) == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        kinds = [line["event"] for line in lines]
        assert kinds[0] == "campaign_started"
        assert kinds[-1] == "campaign_finished"
        cells = [l for l in lines if l["event"] == "cell_finished"]
        assert len(cells) == lines[0]["cells_total"]
        assert all(c["record"]["status"] in ("ok", "timeout", "error")
                   for c in cells)
        # --json replaces the table entirely
        assert not any("Campaign under source model" in json.dumps(l)
                       for l in lines)

    def test_progress_stream_on_stderr(self, capsys):
        assert main(["campaign", "--small", "--arch", "aarch64",
                     "--opt=-O2", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "Campaign under source model" in captured.out  # table kept
        assert "[1/" in captured.err  # live per-cell progress
        assert "cells (" in captured.err

    def test_campaign_store_roundtrip_via_cli(self, tmp_path, capsys):
        store = str(tmp_path / "cli.jsonl")
        assert main(["campaign", "--small", "--arch", "aarch64",
                     "--opt=-O2", "--store", store, "--no-progress"]) == 0
        first = capsys.readouterr().out
        assert "0 replayed" in first
        assert main(["campaign", "--small", "--arch", "aarch64",
                     "--opt=-O2", "--store", store, "--resume",
                     "--no-progress"]) == 0
        second = capsys.readouterr().out
        assert "0 appended" in second
