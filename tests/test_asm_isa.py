"""Print/parse round-trip tests for all six ISA syntax modules."""

import pytest

from repro.asm import Instruction, IsaError, Op, get_isa, list_isas

#: representative instruction set per ISA, as surface syntax lines.
ROUNDTRIP_LINES = {
    "aarch64": [
        "nop",
        "ret",
        "mov w12, #1",
        "mov w12, w13",
        "adrp x8, got_x",
        "adrp x8, stack_P0+8",
        "add w12, w13, #4",
        "orr w12, w13, w14",
        "eor w12, w13, #1",
        "lsr w12, w13, #31",
        "cmp w12, #0",
        "cmp w12, w13",
        "b.eq .L0",
        "b.ne .L0",
        "cbz w12, .L1",
        "cbnz w12, .L1",
        "b .L2",
        "dmb ish",
        "dmb ishld",
        "dmb ishst",
        "isb",
        "ldr w12, [x8]",
        "ldr w12, [x8, #4]",
        "ldar w12, [x8]",
        "ldapr w12, [x8]",
        "str w12, [x8]",
        "stlr w12, [x8]",
        "ldxr w12, [x8]",
        "ldaxr w12, [x8]",
        "stxr w13, w12, [x8]",
        "stlxr w13, w12, [x8]",
        "ldp x12, x13, [x8]",
        "stp x12, x13, [x8]",
        "ldxp x12, x13, [x8]",
        "ldaxp x12, x13, [x8]",
        "stxp w14, x12, x13, [x8]",
        "stlxp w14, x12, x13, [x8]",
        "ldadd w12, w13, [x8]",
        "ldadda w12, w13, [x8]",
        "ldaddal w12, w13, [x8]",
        "ldeor w12, w13, [x8]",
        "ldset w12, w13, [x8]",
        "swp w12, w13, [x8]",
        "swpal w12, w13, [x8]",
        "stadd w12, [x8]",
        "staddl w12, [x8]",
        ".Llabel:",
    ],
    "armv7": [
        "nop",
        "bx lr",
        "mov r4, #2",
        "mov r4, r5",
        "ldr r4, =x",
        "add r4, r5, #1",
        "cmp r4, #0",
        "beq .L0",
        "bne .L0",
        "b .L1",
        "dmb ish",
        "isb",
        "ldr r4, [r10]",
        "ldr r4, [r10, #4]",
        "str r4, [r10]",
        "ldrex r4, [r10]",
        "strex r5, r4, [r10]",
    ],
    "x86_64": [
        "nop",
        "ret",
        "mov eax, 3",
        "mov eax, ecx",
        "lea r8, [rip+x]",
        "add eax, 1",
        "xor eax, ecx",
        "cmp eax, 0",
        "je .L0",
        "jne .L0",
        "jmp .L1",
        "mfence",
        "mov eax, dword ptr [r8]",
        "mov rax, qword ptr [r8]",
        "mov dword ptr [r8], eax",
        "mov dword ptr [r8], 1",
        "mov dword ptr [r8+4], eax",
        "xchg eax, dword ptr [r8]",
        "lock xadd dword ptr [r8], eax",
        "lock or dword ptr [r8], eax",
        "lock and dword ptr [r8], 7",
    ],
    "riscv64": [
        "nop",
        "ret",
        "li a5, 1",
        "la a0, x",
        "mv a5, a6",
        "addi a5, a6, 4",
        "and a5, a6, a7",
        "beq a5, a6, .L0",
        "bne a5, zero, .L0",
        "beqz a5, .L1",
        "bnez a5, .L1",
        "j .L2",
        "fence rw,rw",
        "fence r,rw",
        "fence rw,w",
        "lw a5, 0(a0)",
        "ld a5, 8(a0)",
        "sw a5, 0(a0)",
        "amoadd.w a5, a4, (a0)",
        "amoadd.w.aqrl a5, a4, (a0)",
        "amoswap.w.aq a5, a4, (a0)",
        "lr.w a5, (a0)",
        "lr.w.aq a5, (a0)",
        "sc.w a6, a5, (a0)",
        "sc.w.rl a6, a5, (a0)",
    ],
    "ppc64": [
        "nop",
        "blr",
        "li r14, 1",
        "la r9, x",
        "mr r14, r15",
        "addi r14, r15, 4",
        "cmpwi r14, 0",
        "cmpw r14, r15",
        "beq .L0",
        "bne .L0",
        "b .L1",
        "sync",
        "lwsync",
        "isync",
        "lwz r14, 0(r9)",
        "ld r14, 0(r9)",
        "stw r14, 0(r9)",
        "lwarx r14, 0, r9",
        "stwcx. r14, 0, r9",
    ],
    "mips64": [
        "nop",
        "jr $ra",
        "li $2, 1",
        "la $4, x",
        "move $2, $3",
        "addiu $2, $3, 4",
        "beq $2, $3, .L0",
        "bne $2, $zero, .L0",
        "beqz $2, .L1",
        "bnez $2, .L1",
        "b .L2",
        "sync",
        "lw $2, 0($4)",
        "sw $2, 0($4)",
        "ll $2, 0($4)",
        "sc $2, 0($4)",
    ],
}


class TestRegistry:
    def test_all_isas_registered(self):
        assert list_isas() == sorted(
            ["aarch64", "armv7", "x86_64", "riscv64", "ppc64", "mips64"]
        )

    def test_unknown_isa_raises(self):
        with pytest.raises(IsaError):
            get_isa("ia64")


@pytest.mark.parametrize("arch", sorted(ROUNDTRIP_LINES))
class TestRoundTrip:
    def test_parse_print_roundtrip(self, arch):
        """parse(line) then print must reproduce the line (modulo case)."""
        isa = get_isa(arch)
        for line in ROUNDTRIP_LINES[arch]:
            instr = isa.parse_line(line)
            printed = isa.print_instruction(instr)
            assert printed.lower() == line.lower(), (
                f"{arch}: {line!r} reprints as {printed!r}"
            )

    def test_reparse_stability(self, arch):
        """print(parse(x)) reparses to an equivalent instruction."""
        isa = get_isa(arch)
        for line in ROUNDTRIP_LINES[arch]:
            first = isa.parse_line(line)
            second = isa.parse_line(isa.print_instruction(first))
            assert first.with_text("") == second.with_text("")


class TestParserDetails:
    def test_aarch64_widths(self):
        isa = get_isa("aarch64")
        assert isa.parse_line("ldr w12, [x8]").width == 32
        assert isa.parse_line("ldr x12, [x8]").width == 64

    def test_aarch64_amo_flags(self):
        isa = get_isa("aarch64")
        amo = isa.parse_line("ldaddal w1, w2, [x8]")
        assert amo.acquire and amo.release and amo.amo_kind == "add"
        st_form = isa.parse_line("stadd w1, [x8]")
        assert st_form.dst is None  # the NORET precondition

    def test_riscv_width_from_mnemonic(self):
        isa = get_isa("riscv64")
        assert isa.parse_line("lw a5, 0(a0)").width == 32
        assert isa.parse_line("ld a5, 0(a0)").width == 64

    def test_mips_sc_success_value(self):
        isa = get_isa("mips64")
        sc = isa.parse_line("sc $2, 0($4)")
        assert sc.imm == 1  # MIPS sc writes 1 on success

    def test_x86_lock_prefix_sets_exclusive(self):
        isa = get_isa("x86_64")
        assert isa.parse_line("lock xadd dword ptr [r8], eax").exclusive
        assert isa.parse_line("xchg eax, dword ptr [r8]").exclusive

    def test_unknown_mnemonics_raise(self):
        for arch in ROUNDTRIP_LINES:
            with pytest.raises(IsaError):
                get_isa(arch).parse_line("frobnicate r1, r2")

    def test_comments_and_blanks_skipped(self):
        isa = get_isa("aarch64")
        instrs = isa.parse_body(["", "// comment", "nop"])
        assert len(instrs) == 1 and instrs[0].op is Op.NOP
