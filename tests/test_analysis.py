"""Tests for repro.analysis: diagnostics, catlint, litmuslint, and the
registration / engine / CLI wiring.

Structure:

* golden tests — every in-tree model, paper test and hunt seed lints
  clean (the CI gate);
* negative fixtures — one per diagnostic code, asserting code, severity
  and span;
* wiring — Session registration raises, campaign plans refuse bad
  corpora, mutation operators refuse ill-formed mutants, and the
  ``telechat lint`` command round-trips.
"""

from __future__ import annotations

import json

import pytest

from repro import papertests
from repro.analysis import (
    CODES,
    Diagnostic,
    Kind,
    LintReport,
    Severity,
    builtin_kinds,
    check_mutant,
    diag,
    lint_c_source,
    lint_cat_source,
    lint_litmus,
    lint_litmus_report,
    severity_of_code,
)
from repro.api import CampaignPlan, Session
from repro.api.plan import PlanError
from repro.cat.parser import parse
from repro.cat.registry import MODELS, get_source, list_models, register_model_source
from repro.core.errors import LintError, ParseError
from repro.core.litmus import Condition, TrueProp
from repro.core.span import Span
from repro.hunt.seeds import example_seeds
from repro.lang.ast import CLitmus
from repro.lang.parser import parse_c_litmus
from repro.pipeline.cli import main


def cat_codes(source: str) -> list:
    return [d.code for d in lint_cat_source(source, "t.cat").diagnostics]


def cat_diag(source: str, code: str) -> Diagnostic:
    matches = [
        d for d in lint_cat_source(source, "t.cat").diagnostics if d.code == code
    ]
    assert matches, f"expected {code}, got {cat_codes(source)}"
    return matches[0]


def lit_diag(source: str, code: str) -> Diagnostic:
    report = lint_c_source(source, "t.litmus")
    matches = [d for d in report.diagnostics if d.code == code]
    codes = [d.code for d in report.diagnostics]
    assert matches, f"expected {code}, got {codes}"
    return matches[0]


# --------------------------------------------------------------------------- #
# diagnostics framework
# --------------------------------------------------------------------------- #
class TestDiagnostics:
    def test_severity_encoded_in_code(self):
        assert severity_of_code("CAT001") is Severity.ERROR
        assert severity_of_code("CAT101") is Severity.WARNING
        assert severity_of_code("LIT002") is Severity.ERROR
        assert severity_of_code("LIT105") is Severity.WARNING
        with pytest.raises(KeyError):
            severity_of_code("XYZ999")

    def test_every_code_catalogued(self):
        for code in CODES:
            assert len(code) == 6
            assert code[:3] in ("CAT", "LIT")
            severity_of_code(code)  # must not raise

    def test_render_with_span(self):
        d = diag("CAT002", "undefined name 'x'", Span.at(3, 7, 1), "m.cat")
        assert d.render() == "m.cat:3:7: error CAT002: undefined name 'x'"
        assert d.render("other") .startswith("other:3:7:")

    def test_render_without_span(self):
        d = diag("LIT104", "nothing observed")
        assert d.render("t") == "t:0: warning LIT104: nothing observed"

    def test_as_dict(self):
        d = diag("CAT101", "shadowed", Span.at(2, 5), "m")
        payload = d.as_dict()
        assert payload["code"] == "CAT101"
        assert payload["severity"] == "warning"
        assert payload["line"] == 2 and payload["column"] == 5

    def test_report_partitions(self):
        report = LintReport(
            "t", "cat",
            (diag("CAT002", "e"), diag("CAT102", "w")),
        )
        assert not report.ok
        assert [d.code for d in report.errors] == ["CAT002"]
        assert [d.code for d in report.warnings] == ["CAT102"]
        assert LintReport("t", "cat").ok
        assert "clean" in LintReport("t", "cat").render()


# --------------------------------------------------------------------------- #
# golden: the whole in-tree corpus lints clean
# --------------------------------------------------------------------------- #
class TestCorpusClean:
    @pytest.mark.parametrize("name", list_models())
    def test_model_clean(self, name):
        report = lint_cat_source(get_source(name), name)
        assert report.diagnostics == (), report.render()

    @pytest.mark.parametrize("factory", papertests.PAPER_TESTS)
    def test_paper_test_clean(self, factory):
        report = lint_litmus_report(getattr(papertests, factory)())
        assert report.diagnostics == (), report.render()

    def test_hunt_seeds_clean(self):
        for seed in example_seeds():
            report = lint_litmus_report(seed)
            assert report.diagnostics == (), report.render()

    def test_all_tests_helper_covers_factories(self):
        assert len(papertests.all_tests()) == len(papertests.PAPER_TESTS)


# --------------------------------------------------------------------------- #
# catlint negative fixtures — one per code
# --------------------------------------------------------------------------- #
class TestCatlintCodes:
    def test_cat000_parse_error(self):
        report = lint_cat_source("let = po", "t.cat")
        (d,) = report.diagnostics
        assert d.code == "CAT000" and d.severity is Severity.ERROR
        assert d.span is not None and d.span.line == 1

    def test_cat001_bracket_on_relation(self):
        d = cat_diag("t\nacyclic [po] as c", "CAT001")
        assert d.severity is Severity.ERROR
        assert (d.span.line, d.span.column) == (2, 9)

    def test_cat002_undefined_name(self):
        d = cat_diag("t\nacyclic nosuchrel as c", "CAT002")
        assert d.severity is Severity.ERROR
        assert (d.span.line, d.span.column) == (2, 9)

    def test_cat003_cartesian_on_relation(self):
        d = cat_diag("t\nacyclic (po * W) as c", "CAT003")
        assert d.severity is Severity.ERROR
        assert d.span.line == 2 and d.span.column == 13  # the * token

    def test_cat004_unknown_builtin(self):
        d = cat_diag("t\nacyclic mystery(po) as c", "CAT004")
        assert d.severity is Severity.ERROR
        assert (d.span.line, d.span.column) == (2, 9)

    def test_cat005_builtin_arity(self):
        d = cat_diag("t\nempty domain(rf, co) as c", "CAT005")
        assert d.severity is Severity.ERROR
        assert (d.span.line, d.span.column) == (2, 7)

    def test_cat006_set_builtin_on_relation(self):
        d = cat_diag("t\nacyclic toid(po) as c", "CAT006")
        assert d.severity is Severity.ERROR
        assert (d.span.line, d.span.column) == (2, 9)

    def test_cat007_non_monotone_rec(self):
        src = "t\nlet rec r = po \\ r\nacyclic r as c"
        d = cat_diag(src, "CAT007")
        assert d.severity is Severity.ERROR
        assert (d.span.line, d.span.column) == (2, 18)  # the rec name use

    def test_cat007_complement_flips_polarity(self):
        src = "t\nlet rec r = po ; ~r\nacyclic r as c"
        assert "CAT007" in cat_codes(src)
        # double negation is positive again
        src2 = "t\nlet rec r = po ; ~(~r)\nacyclic r as c"
        assert "CAT007" not in cat_codes(src2)

    def test_cat007_monotone_rec_is_clean(self):
        src = "t\nlet rec r = po | (r ; r)\nacyclic r as c"
        assert "CAT007" not in cat_codes(src)

    def test_cat008_unsatisfiable_check(self):
        d = cat_diag("t\n~empty 0 as c", "CAT008")
        assert d.severity is Severity.ERROR
        assert d.span.line == 2

    def test_cat101_shadows_builtin(self):
        d = cat_diag("t\nlet po = rf\nacyclic po as c", "CAT101")
        assert d.severity is Severity.WARNING
        assert (d.span.line, d.span.column) == (2, 5)

    def test_cat101_shadows_earlier_binding(self):
        src = "t\nlet a = po\nlet a = rf\nacyclic a as c"
        d = cat_diag(src, "CAT101")
        assert d.span.line == 3
        assert "earlier binding" in d.message

    def test_cat102_unused_binding(self):
        d = cat_diag("t\nlet dead = po\nacyclic po as c", "CAT102")
        assert d.severity is Severity.WARNING
        assert (d.span.line, d.span.column) == (2, 5)

    def test_cat102_show_counts_as_use(self):
        src = "t\nlet shown = po\nshow shown\nacyclic po as c"
        assert "CAT102" not in cat_codes(src)

    def test_cat103_set_coerced(self):
        d = cat_diag("t\nacyclic (W ; po) as c", "CAT103")
        assert d.severity is Severity.WARNING
        assert d.span.line == 2
        assert "CAT103" in cat_codes("t\nacyclic W^+ as c")

    def test_cat104_mixed_union(self):
        d = cat_diag("t\nacyclic (W | po) as c", "CAT104")
        assert d.severity is Severity.WARNING
        assert d.span.line == 2 and d.span.column == 12  # the | token

    def test_cat105_duplicate_check_name(self):
        src = "t\nacyclic po as c\nacyclic rf as c"
        d = cat_diag(src, "CAT105")
        assert d.severity is Severity.WARNING
        assert d.span.line == 3

    def test_cat106_trivially_true_check(self):
        d = cat_diag("t\nempty 0 as c", "CAT106")
        assert d.severity is Severity.WARNING
        assert d.span.line == 2

    def test_set_difference_stays_set(self):
        # the aarch64 regression: R \ NORET is a set, [R \ NORET] is fine
        src = "t\nlet RR = R \\ NORET\nacyclic ([RR] ; po) as c"
        assert cat_codes(src) == []


# --------------------------------------------------------------------------- #
# litmuslint negative fixtures — one per code
# --------------------------------------------------------------------------- #
GOOD_HEADER = """C t
{ x = 0; y = 0; }
void P0(atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
void P1(atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
"""


class TestLitmuslintCodes:
    def test_clean_lb(self):
        report = lint_c_source(GOOD_HEADER + "exists (P0:r0=1 /\\ P1:r0=1)\n")
        assert report.diagnostics == (), report.render()

    def test_lit000_parse_error(self):
        report = lint_c_source("C broken\n{ x = }\n", "b.litmus")
        (d,) = report.diagnostics
        assert d.code == "LIT000" and d.severity is Severity.ERROR

    def test_lit001_unassigned_register(self):
        src = GOOD_HEADER + "exists (P0:r9=1)\n"
        d = lit_diag(src, "LIT001")
        assert d.severity is Severity.ERROR
        assert d.span.line == 11
        assert d.span.column == src.splitlines()[10].index("P0:r9") + 1

    def test_lit001_unknown_thread(self):
        d = lit_diag(GOOD_HEADER + "exists (P7:r0=1)\n", "LIT001")
        assert "no thread" in d.message

    def test_lit002_unknown_location(self):
        d = lit_diag(GOOD_HEADER + "exists (z=1)\n", "LIT002")
        assert d.severity is Severity.ERROR
        assert d.span.line == 11

    def test_lit003_bad_thread_name(self):
        src = """C t
{ x = 0; }
void Q0(atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
exists (x=1)
"""
        d = lit_diag(src, "LIT003")
        assert d.severity is Severity.ERROR
        assert (d.span.line, d.span.column) == (3, 6)

    def test_lit003_duplicate_thread_name(self):
        src = """C t
{ x = 0; }
void P0(atomic_int* x) { atomic_store_explicit(x, 1, memory_order_relaxed); }
void P0(atomic_int* x) { atomic_store_explicit(x, 2, memory_order_relaxed); }
exists (x=1)
"""
        d = lit_diag(src, "LIT003")
        assert "duplicate" in d.message

    def test_lit101_condition_loc_missing_from_init(self):
        src = """C t
{ x = 0; }
void P0(atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
exists (P0:r0=1 /\\ y=1)
"""
        d = lit_diag(src, "LIT101")
        assert d.severity is Severity.WARNING
        assert d.span.line == 7

    def test_lit102_dead_init_var(self):
        src = """C t
{ x = 0; dead = 7; }
void P0(atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
exists (P0:r0=1)
"""
        d = lit_diag(src, "LIT102")
        assert d.severity is Severity.WARNING
        assert (d.span.line, d.span.column) == (2, 10)

    def test_lit103_inert_thread(self):
        src = """C t
{ x = 0; }
void P0(atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
void P1(atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (x=1)
"""
        d = lit_diag(src, "LIT103")
        assert d.severity is Severity.WARNING
        assert (d.span.line, d.span.column) == (6, 6)

    def test_lit104_condition_observes_nothing(self):
        litmus = CLitmus(
            name="t",
            init={"x": 0},
            condition=Condition("exists", TrueProp()),
            threads=(),
        )
        codes = [d.code for d in lint_litmus(litmus)]
        assert "LIT104" in codes

    def test_lit105_location_outside_init(self):
        src = """C t
{ x = 0; }
void P0(atomic_int* x, atomic_int* y) {
  atomic_store_explicit(y, 1, memory_order_relaxed);
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
exists (x=1)
"""
        d = lit_diag(src, "LIT105")
        assert d.severity is Severity.WARNING
        assert (d.span.line, d.span.column) == (3, 6)

    def test_programmatic_lint_has_no_spans(self):
        litmus = parse_c_litmus(GOOD_HEADER + "exists (P0:r9=1)\n", "t")
        (d,) = [x for x in lint_litmus(litmus) if x.code == "LIT001"]
        assert d.span is None

    def test_rmw_counts_as_write_and_read(self):
        src = """C t
{ x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
exists (P0:r0=0)
"""
        assert lint_c_source(src).diagnostics == ()


# --------------------------------------------------------------------------- #
# sort table stays in sync with the runtime
# --------------------------------------------------------------------------- #
class TestBuiltinKinds:
    def test_dynamic_relations_present(self):
        kinds = builtin_kinds()
        for name in ("rf", "co", "fr", "rfe", "fri"):
            assert kinds[name] is Kind.REL

    def test_matches_static_env(self):
        from repro.cat.stdlib import build_static_env
        from repro.core.relations import Relation

        env = build_static_env((), Relation.empty()).env
        kinds = builtin_kinds()
        for name, value in env.bindings.items():
            expected = Kind.REL if isinstance(value, Relation) else Kind.SET
            assert kinds[name] is expected, name

    def test_core_sorts(self):
        kinds = builtin_kinds()
        assert kinds["W"] is Kind.SET
        assert kinds["po"] is Kind.REL
        assert kinds["loc"] is Kind.REL
        assert kinds["SC"] is Kind.SET


# --------------------------------------------------------------------------- #
# spans on the cat AST / ParseError rendering (satellites 1+2)
# --------------------------------------------------------------------------- #
class TestSpans:
    def test_parser_attaches_spans(self):
        model = parse('"m"\nlet a = po ; rf\nacyclic a as c\n')
        let, check = model.statements
        assert let.span.line == 2 and let.span.column == 1
        assert let.binding_spans[0].line == 2
        assert let.binding_spans[0].column == 5
        seq = let.bindings[0][1]
        assert seq.span.column == 12  # the ; operator
        assert check.span.line == 3

    def test_spans_ignored_by_equality(self):
        a = parse("m\nlet a = po\nacyclic a as c")
        b = parse("m\n\n\nlet a =   po\nacyclic a   as c")
        assert a.statements[0].bindings == b.statements[0].bindings

    def test_parse_error_at_eof_has_position(self):
        with pytest.raises(ParseError) as exc_info:
            parse("m\nlet a =")
        exc = exc_info.value
        assert exc.line == 2
        assert exc.column == 8  # just past '='

    def test_parse_error_render(self):
        try:
            parse("m\nlet a = ;", source_name="bad.cat")
        except ParseError as exc:
            rendered = exc.render()
            assert rendered.startswith("bad.cat:2:9:")
            assert "let a = ;" in rendered  # the snippet line
            assert rendered.splitlines()[-1].rstrip().endswith("^")
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_parse_error_legacy_str(self):
        with pytest.raises(ParseError, match="at line 2, column 9"):
            parse("m\nlet a = ;")

    def test_c_parse_error_carries_source(self):
        try:
            parse_c_litmus("C t\n{ x = }\n", "b.litmus")
        except ParseError as exc:
            assert exc.source_name == "b.litmus"
            assert exc.snippet
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


# --------------------------------------------------------------------------- #
# wiring: registry, session, engine, mutation
# --------------------------------------------------------------------------- #
BAD_REC_MODEL = "badrec\nlet rec grows = po | (po \\ grows)\nacyclic grows as main\n"
WARN_MODEL = "warny\nlet unused_here = po\nacyclic po as main\n"

BAD_SEED_SOURCE = """C badseed
{ x = 0; }
void P0(atomic_int* x) { atomic_store_explicit(x, 1, memory_order_relaxed); }
void P1(atomic_int* x) { int r0 = atomic_load_explicit(x, memory_order_relaxed); }
exists (P1:r9=1)
"""


class TestWiring:
    def test_register_model_source_raises(self):
        overlay = MODELS.overlay()
        with pytest.raises(LintError) as exc_info:
            register_model_source("badrec", BAD_REC_MODEL, registry=overlay)
        assert [d.code for d in exc_info.value.diagnostics] == ["CAT007"]
        from repro.core.errors import ModelError

        with pytest.raises(ModelError):
            overlay.resolve("badrec")  # nothing landed in the registry

    def test_register_model_source_validate_false(self):
        overlay = MODELS.overlay()
        register_model_source("badrec", BAD_REC_MODEL, registry=overlay,
                              validate=False)
        assert overlay.get("badrec") == BAD_REC_MODEL

    def test_session_register_model_raises(self):
        session = Session()
        with pytest.raises(LintError):
            session.register_model("badrec", BAD_REC_MODEL)

    def test_session_register_model_collects_warnings(self):
        session = Session()
        session.register_model("warny", WARN_MODEL)
        assert [d.code for d in session.lint_warnings] == ["CAT102"]
        assert session.model("warny") is not None

    def test_session_register_model_lint_false(self):
        session = Session()
        session.register_model("badrec", BAD_REC_MODEL, lint=False)
        assert session.models.get("badrec") == BAD_REC_MODEL

    def test_session_lint_targets(self):
        session = Session()
        report = session.lint("rc11")[0]
        assert report.ok and report.kind == "cat"
        litmus = parse_c_litmus(BAD_SEED_SOURCE, "badseed")
        report = session.lint(litmus)[0]
        assert not report.ok and report.kind == "litmus"

    def test_session_lint_default_sweeps_models(self):
        session = Session()
        reports = session.lint()
        assert len(reports) == len(session.models.names())
        assert all(r.ok for r in reports)

    def test_campaign_plan_refuses_bad_test(self):
        session = Session()
        bad = parse_c_litmus(BAD_SEED_SOURCE, "badseed")
        plan = CampaignPlan(tests=(bad,), arches=("aarch64",),
                            opts=("-O2",), compilers=("llvm",))
        with pytest.raises(PlanError) as exc_info:
            session.campaign(plan)
        assert [d.code for d in exc_info.value.diagnostics] == ["LIT001"]

    def test_campaign_plan_lint_false_escape(self):
        session = Session()
        bad = parse_c_litmus(BAD_SEED_SOURCE, "badseed")
        plan = CampaignPlan(tests=(bad,), arches=("aarch64",),
                            opts=("-O2",), compilers=("llvm",), lint=False)
        session.campaign(plan)  # constructs without raising

    def test_hunt_refuses_bad_seed(self):
        session = Session()
        bad = parse_c_litmus(BAD_SEED_SOURCE, "badseed")
        plan = CampaignPlan(tests=(bad,), mode="hunt",
                            arches=("aarch64",), opts=("-O2",),
                            compilers=("llvm",))
        with pytest.raises(PlanError, match="failed static analysis"):
            session.hunt(plan)

    def test_plan_describe_has_lint(self):
        assert CampaignPlan().describe()["lint"] is True

    def test_mutation_precheck_refuses_ill_formed(self):
        from dataclasses import replace

        from repro.tools.mutate import MUTATIONS, iter_mutants

        def breaking_operator(litmus):
            # rename every thread's observed register away: the mutant's
            # condition now reads registers nothing assigns
            broken = replace(
                litmus,
                threads=tuple(
                    replace(t, body=()) for t in litmus.threads
                ),
            )
            yield broken, "gut-all-threads"

        overlay = MUTATIONS.overlay()
        overlay.register("gut", breaking_operator)
        seed = papertests.fig7_lb()
        mutants = list(iter_mutants(seed, operators=("gut",), registry=overlay))
        assert mutants == []  # every mutant refused by the precheck
        assert check_mutant(replace(seed, threads=tuple(
            replace(t, body=()) for t in seed.threads
        )))

    def test_mutation_precheck_keeps_well_formed(self):
        from repro.tools.mutate import iter_mutants

        mutants = list(iter_mutants(papertests.sb_sc()))
        assert mutants  # weaken operators produce valid mutants
        for mutation in mutants:
            assert check_mutant(mutation.litmus) == []


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestLintCli:
    def test_corpus_sweep_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_bad_cat_file_flagged_with_span(self, tmp_path, capsys):
        path = tmp_path / "nonmono.cat"
        path.write_text(BAD_REC_MODEL)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert f"{path}:2:28: error CAT007" in out

    def test_bad_litmus_file_flagged_with_span(self, tmp_path, capsys):
        path = tmp_path / "bad.litmus"
        path.write_text(BAD_SEED_SOURCE)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert f"{path}:5:9: error LIT001" in out

    def test_model_name_target(self, capsys):
        assert main(["lint", "rc11", "fig7_lb"]) == 0
        assert "2 target(s)" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "bad.litmus"
        path.write_text(BAD_SEED_SOURCE)
        assert main(["lint", "--json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["ok"] is False
        codes = {d["code"] for d in payload[0]["diagnostics"]}
        assert "LIT001" in codes

    def test_strict_fails_on_warnings(self, tmp_path, capsys):
        path = tmp_path / "warn.cat"
        path.write_text(WARN_MODEL)
        assert main(["lint", str(path)]) == 0
        capsys.readouterr()
        assert main(["lint", "--strict", str(path)]) == 1

    def test_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["lint", "no-such-target-anywhere"])

    def test_parse_error_rendered_uniformly(self, tmp_path, capsys):
        path = tmp_path / "broken.litmus"
        path.write_text("C t\n{ x = }\n")
        assert main(["test", str(path), "--arch", "aarch64"]) == 2
        err = capsys.readouterr().err
        assert f"{path}:2:" in err
