"""Golden outcome tests for the shipped memory models.

Each classic litmus family has a known allowed/forbidden verdict per
model (the decade of litmus-testing literature the paper builds on).
These tests pin our Cat models to those verdicts.
"""

import pytest

from repro.core.events import MemoryOrder
from repro.herd import simulate_c
from repro.lang import parse_c_litmus
from repro.tools.diy import build_test, get_shape

MO = {
    "rlx": "memory_order_relaxed",
    "acq": "memory_order_acquire",
    "rel": "memory_order_release",
    "sc": "memory_order_seq_cst",
}


def run(source, model, name="t"):
    litmus = parse_c_litmus(source, name)
    result = simulate_c(litmus, model)
    return result, litmus


def condition_holds(source, model):
    result, litmus = run(source, model)
    return result.condition_holds(litmus.condition)


SB_RLX = """
C sb
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(y, 1, memory_order_relaxed);
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P0:r0=0 /\\ P1:r0=0)
"""

SB_SC = SB_RLX.replace("memory_order_relaxed", "memory_order_seq_cst")

MP_REL_ACQ = """
C mp
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_release);
}
void P1(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(y, memory_order_acquire);
  int r1 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=1 /\\ P1:r1=0)
"""

MP_RLX = (
    MP_REL_ACQ.replace("memory_order_release", "memory_order_relaxed")
    .replace("memory_order_acquire", "memory_order_relaxed")
)

LB_RLX = """
C lb
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
exists (P0:r0=1 /\\ P1:r0=1)
"""


class TestSc:
    def test_sc_forbids_sb(self):
        assert not condition_holds(SB_RLX, "sc")

    def test_sc_forbids_lb(self):
        assert not condition_holds(LB_RLX, "sc")

    def test_sc_forbids_mp_stale(self):
        assert not condition_holds(MP_RLX, "sc")

    def test_sc_allows_interleavings(self):
        result, litmus = run(SB_RLX, "sc")
        # SC still allows 0/1, 1/0 and 1/1
        assert len(result.outcomes) == 3


class TestRc11:
    def test_relaxed_sb_allowed(self):
        assert condition_holds(SB_RLX, "rc11")

    def test_seq_cst_sb_forbidden(self):
        assert not condition_holds(SB_SC, "rc11")

    def test_release_acquire_mp_forbidden(self):
        assert not condition_holds(MP_REL_ACQ, "rc11")

    def test_relaxed_mp_allowed(self):
        assert condition_holds(MP_RLX, "rc11")

    def test_lb_forbidden_no_thin_air(self):
        """RC11's conservative po|rf acyclicity forbids all load buffering."""
        assert not condition_holds(LB_RLX, "rc11")

    def test_coherence_single_location(self):
        source = """
C coRR
{ *x = 0; }
void P0(atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
void P1(atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  int r1 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=1 /\\ P1:r1=0)
"""
        assert not condition_holds(source, "rc11")

    def test_atomicity_of_rmw(self):
        source = """
C rmw_atomic
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
void P1(atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
exists (x=2)
"""
        result, litmus = run(source, "rc11")
        # both increments always land: x=2 is the only final value
        finals = {o.as_dict()["x"] for o in result.outcomes}
        assert finals == {2}

    def test_data_race_flagged_as_ub(self):
        source = """
C racy
{ *x = 0; }
void P0(int* x) { *x = 1; }
void P1(int* x) { int r0 = *x; }
exists (P1:r0=1)
"""
        result, _ = run(source, "rc11")
        assert result.has_undefined_behaviour

    def test_no_race_flag_when_synchronised(self):
        result, _ = run(MP_REL_ACQ, "rc11")
        assert not result.has_undefined_behaviour


class TestRc11Lb:
    def test_lb_allowed(self):
        """rc11+lb permits dependency-free load buffering (ISO C/C++)."""
        assert condition_holds(LB_RLX, "rc11+lb")

    def test_dependency_cycles_still_forbidden(self):
        """Genuine out-of-thin-air stays forbidden under rc11+lb."""
        source = """
C oota
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, r0, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  atomic_store_explicit(x, r0, memory_order_relaxed);
}
exists (P0:r0=1 /\\ P1:r0=1)
"""
        assert not condition_holds(source, "rc11+lb")

    def test_outcome_superset_of_rc11(self):
        for source in (SB_RLX, MP_RLX, LB_RLX):
            strict, litmus = run(source, "rc11")
            relaxed, _ = run(source, "rc11+lb")
            assert strict.outcomes <= relaxed.outcomes


class TestC11Variants:
    def test_c11_simp_weakest(self):
        """Coherence-only model allows SB, LB and stale MP."""
        assert condition_holds(SB_RLX, "c11_simp")
        assert condition_holds(LB_RLX, "c11_simp")
        assert condition_holds(MP_RLX, "c11_simp")

    def test_c11_partialsc_allows_sc_sb(self):
        """Without the SC axiom, even seq_cst SB is allowed."""
        assert condition_holds(SB_SC, "c11_partialsc")
        assert not condition_holds(SB_SC, "rc11")

    def test_partialsc_still_has_coherence(self):
        assert not condition_holds(MP_REL_ACQ, "c11_partialsc")
