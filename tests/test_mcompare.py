"""mcompare edge cases: StateMapping/default_mapping with empty outcome
sets, observables absent on one side, renames, and domain projection."""

import pytest

from repro.core.execution import Outcome
from repro.herd.enumerate import EnumerationStats
from repro.herd.simulator import SimulationResult
from repro.tools.mcompare import (
    StateMapping,
    default_mapping,
    mcompare,
)


def sim(name, outcomes, model="rc11", flags=()):
    return SimulationResult(
        test_name=name,
        model_name=model,
        outcomes=frozenset(Outcome.of(o) for o in outcomes),
        flags=frozenset(flags),
        flagged_outcomes=frozenset(),
        stats=EnumerationStats(),
    )


class TestStateMapping:
    def test_missing_observables_read_as_zero(self):
        """Registers absent on one side complete to zero — the Fig. 9
        deleted-local effect (herd zero-initialises)."""
        mapping = StateMapping(observables=frozenset({"x", "P0:r0"}))
        applied = mapping.apply(Outcome.of({"x": 1}))
        assert applied.as_dict() == {"x": 1, "P0:r0": 0}

    def test_out_of_domain_keys_projected_away(self):
        mapping = StateMapping(observables=frozenset({"x"}))
        applied = mapping.apply(
            Outcome.of({"x": 2, "GOT:x": 7, "stack0": 3})
        )
        assert applied.as_dict() == {"x": 2}

    def test_renames_apply_before_projection(self):
        mapping = StateMapping(
            observables=frozenset({"P0:r0"}),
            renames=(("out_P0_r0", "P0:r0"),),
        )
        applied = mapping.apply(Outcome.of({"out_P0_r0": 5}))
        assert applied.as_dict() == {"P0:r0": 5}

    def test_empty_domain_collapses_everything(self):
        """An empty observable set maps every outcome to the unique
        empty outcome — the degenerate comparison is always 'equal'."""
        mapping = StateMapping(observables=frozenset())
        a = mapping.apply(Outcome.of({"x": 1}))
        b = mapping.apply(Outcome.of({"y": 9}))
        assert a == b == Outcome.of({})


class TestDefaultMapping:
    def test_domain_is_locations_plus_condition_observables(self):
        mapping = default_mapping(["x", "y"], ["P1:r0"])
        assert mapping.observables == frozenset({"x", "y", "P1:r0"})
        assert mapping.renames == ()

    def test_empty_everything(self):
        assert default_mapping([], []).observables == frozenset()


class TestMcompareEdges:
    def test_both_sides_empty_is_equal(self):
        """Timeout-free but outcome-free simulations (an over-tight
        budget on both sides) compare equal, not positive."""
        result = mcompare(sim("t", []), sim("t", [], model="aarch64"))
        assert result.verdict() == "equal"
        assert result.is_equal

    def test_empty_source_makes_every_target_outcome_positive(self):
        result = mcompare(
            sim("t", []),
            sim("t", [{"x": 0}, {"x": 1}], model="aarch64"),
            shared_locations=["x"],
        )
        assert result.verdict() == "positive"
        assert len(result.positive) == 2

    def test_empty_target_is_negative_only(self):
        """A compiled program that lost every outcome is a negative
        difference (expected under optimisation), never a bug."""
        result = mcompare(
            sim("t", [{"x": 0}]),
            sim("t", [], model="aarch64"),
            shared_locations=["x"],
        )
        assert result.verdict() == "negative"
        assert not result.is_positive

    def test_register_absent_on_compiled_side(self):
        """A deleted local (Fig. 9): the compiled side never writes
        P0:r0, so its outcomes complete to r0=0 and the r0=1 source
        outcome shows up as negative — and vice versa, a compiled-only
        r0 value is positive."""
        source = sim("t", [{"x": 1, "P0:r0": 0}, {"x": 1, "P0:r0": 1}])
        target = sim("t", [{"x": 1}], model="aarch64")
        result = mcompare(
            source, target,
            shared_locations=["x"], condition_observables=["P0:r0"],
        )
        assert result.verdict() == "negative"
        lost = {o.as_dict()["P0:r0"] for o in result.negative}
        assert lost == {1}

    def test_register_absent_on_source_side_is_positive(self):
        source = sim("t", [{"x": 1}])
        target = sim(
            "t", [{"x": 1, "P0:r0": 1}], model="aarch64"
        )
        result = mcompare(
            source, target,
            shared_locations=["x"], condition_observables=["P0:r0"],
        )
        assert result.verdict() == "positive"

    def test_source_ub_excuses_positives(self):
        source = sim("t", [{"x": 0}], flags={"undefined-behaviour"})
        target = sim("t", [{"x": 1}], model="aarch64")
        result = mcompare(source, target, shared_locations=["x"])
        assert result.verdict() == "ub-masked"
        assert not result.is_positive

    def test_explicit_mapping_overrides_domain_args(self):
        """Passing a mapping wins over shared_locations (which are then
        ignored) — the documented precedence."""
        result = mcompare(
            sim("t", [{"x": 0, "y": 5}]),
            sim("t", [{"x": 0, "y": 9}], model="aarch64"),
            mapping=StateMapping(observables=frozenset({"x"})),
            shared_locations=["x", "y"],
        )
        assert result.is_equal
