"""Unit tests for events, memory orders, value expressions and conditions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import INIT_TID, Event, EventKind, MemoryOrder, make_init_writes
from repro.core.expr import BinOp, Const, ReadVal, UnOp, is_constant
from repro.core.litmus import And, Condition, LocEq, Not, Or, RegEq, TrueProp, conj
from repro.core.execution import Outcome


class TestMemoryOrder:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("memory_order_relaxed", MemoryOrder.RLX),
            ("memory_order_seq_cst", MemoryOrder.SC),
            ("acquire", MemoryOrder.ACQ),
            ("REL", MemoryOrder.REL),
            ("acq_rel", MemoryOrder.ACQ_REL),
            ("consume", MemoryOrder.CON),
            ("plain", MemoryOrder.NA),
        ],
    )
    def test_parse(self, text, expected):
        assert MemoryOrder.parse(text) is expected

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError):
            MemoryOrder.parse("memory_order_bogus")

    def test_strength_predicates(self):
        assert MemoryOrder.SC.at_least_acquire
        assert MemoryOrder.SC.at_least_release
        assert MemoryOrder.ACQ.at_least_acquire
        assert not MemoryOrder.ACQ.at_least_release
        assert MemoryOrder.REL.at_least_release
        assert not MemoryOrder.RLX.at_least_acquire
        assert not MemoryOrder.NA.is_atomic
        assert MemoryOrder.RLX.is_atomic

    def test_c11_spelling_roundtrip(self):
        for order in MemoryOrder:
            if order is MemoryOrder.NA:
                continue
            assert MemoryOrder.parse(order.c11_spelling()) is order


class TestEvent:
    def test_classification(self):
        read = Event(0, 0, EventKind.READ, loc="x", value=1)
        assert read.is_read and read.is_access and not read.is_write

    def test_init_events(self):
        writes = make_init_writes({"x": 0, "y": 2})
        assert all(w.tid == INIT_TID and w.is_init for w in writes)
        assert {w.loc: w.value for w in writes} == {"x": 0, "y": 2}
        assert all("INIT" in w.tags for w in writes)

    def test_with_value_and_tags(self):
        e = Event(0, 0, EventKind.READ, loc="x")
        assert e.with_value(3).value == 3
        assert e.with_tags("A").has_tag("A")

    def test_rmw_half_detection(self):
        e = Event(0, 0, EventKind.READ, loc="x", tags=frozenset({"RMW-R"}))
        assert e.is_rmw_half

    def test_pretty_mentions_kind_and_loc(self):
        e = Event(0, 0, EventKind.WRITE, loc="x", value=1, order=MemoryOrder.RLX)
        assert "W" in e.pretty() and "x" in e.pretty()


class TestExpr:
    def test_const_eval(self):
        assert Const(5).eval({}) == 5
        assert is_constant(Const(5))

    def test_readval_requires_env(self):
        with pytest.raises(KeyError):
            ReadVal(3).eval({})
        assert ReadVal(3).eval({3: 7}) == 7

    def test_binop_eval(self):
        expr = BinOp("+", ReadVal(0), Const(2))
        assert expr.eval({0: 3}) == 5
        assert expr.reads() == frozenset({0})

    def test_comparison_yields_01(self):
        assert BinOp("==", Const(1), Const(1)).eval({}) == 1
        assert BinOp("<", Const(2), Const(1)).eval({}) == 0

    def test_division_by_zero_yields_zero(self):
        assert BinOp("/", Const(1), Const(0)).eval({}) == 0
        assert BinOp("%", Const(1), Const(0)).eval({}) == 0

    def test_substitute_folds_constants(self):
        expr = BinOp("*", ReadVal(0), Const(3)).substitute({0: 2})
        assert is_constant(expr) and expr.eval({}) == 6

    def test_unop(self):
        assert UnOp("!", Const(0)).eval({}) == 1
        assert UnOp("-", Const(3)).eval({}) == -3

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("**", Const(1), Const(2))
        with pytest.raises(ValueError):
            UnOp("+", Const(1))

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_substitute_matches_eval(self, a, b):
        expr = BinOp("+", BinOp("*", ReadVal(0), Const(2)), ReadVal(1))
        env = {0: a, 1: b}
        assert expr.substitute(env).eval({}) == expr.eval(env)


class TestCondition:
    def outcome(self, **kv):
        return Outcome.of(kv)

    def test_loc_eq(self):
        assert LocEq("x", 1).evaluate({"x": 1})
        assert not LocEq("x", 1).evaluate({"x": 0})
        assert not LocEq("x", 1).evaluate({})  # missing reads as 0

    def test_reg_eq_name(self):
        prop = RegEq("P1", "r0", 2)
        assert prop.name == "P1:r0"
        assert prop.evaluate({"P1:r0": 2})

    def test_connectives(self):
        p = And(LocEq("x", 1), Not(LocEq("y", 1)))
        assert p.evaluate({"x": 1, "y": 0})
        assert not p.evaluate({"x": 1, "y": 1})
        q = Or(LocEq("x", 5), TrueProp())
        assert q.evaluate({})

    def test_conj_empty_is_true(self):
        assert isinstance(conj([]), TrueProp)

    def test_exists_condition(self):
        cond = Condition("exists", LocEq("x", 1))
        assert cond.holds_over([self.outcome(x=0), self.outcome(x=1)])
        assert not cond.holds_over([self.outcome(x=0)])

    def test_forall_condition(self):
        cond = Condition("forall", LocEq("x", 1))
        assert cond.holds_over([self.outcome(x=1)])
        assert not cond.holds_over([self.outcome(x=1), self.outcome(x=0)])

    def test_bad_quantifier_rejected(self):
        with pytest.raises(ValueError):
            Condition("some", TrueProp())

    def test_witnesses(self):
        cond = Condition("exists", LocEq("x", 1))
        hits = cond.witnesses([self.outcome(x=0), self.outcome(x=1)])
        assert hits == [self.outcome(x=1)]

    def test_observables(self):
        cond = Condition("exists", And(RegEq("P0", "r0", 1), LocEq("y", 2)))
        assert cond.observables() == frozenset({"P0:r0", "y"})


class TestOutcome:
    def test_of_sorts_bindings(self):
        assert Outcome.of({"y": 1, "x": 0}) == Outcome.of({"x": 0, "y": 1})

    def test_project(self):
        o = Outcome.of({"x": 1, "y": 2}).project(["x"])
        assert o.as_dict() == {"x": 1}

    def test_rename(self):
        o = Outcome.of({"P0:r0": 1}).rename({"P0:r0": "out_P0_r0"})
        assert o.as_dict() == {"out_P0_r0": 1}

    def test_str_format(self):
        assert str(Outcome.of({"x": 1})) == "{ x=1; }"
