"""Integration tests: the full test_tv pipeline on the paper's studies.

These tests ARE the paper's headline results, asserted end-to-end:
Fig. 1 / Fig. 7 / Fig. 9 / Fig. 10 verdicts, the 128-bit bug trio, the
Armv7 model bug, the LDAPR case study, and per-architecture behaviour.
"""

import pytest

from repro.compiler import make_profile
from repro.herd import Budget
from repro.lang import parse_c_litmus
from repro.papertests import (
    atomics_128,
    fig1_exchange,
    fig7_lb,
    fig9_lb_plain,
    fig10_mp_rmw,
    fig11_lb3,
    sb_sc,
)
from repro.pipeline import differential_outcomes
from repro.pipeline import test_compilation as run_test_tv

# keep pytest from collecting the imported driver as a test
run_test_tv.__test__ = False  # type: ignore[attr-defined]


def verdict(litmus, profile, **kwargs):
    return run_test_tv(litmus, profile, **kwargs).verdict


class TestFig7AcrossArchitectures:
    """Table IV's architecture split on the Fig. 7 LB test."""

    @pytest.mark.parametrize("arch", ["aarch64", "armv7", "riscv64", "ppc64"])
    def test_weak_architectures_show_positive(self, arch):
        profile = make_profile("llvm", "-O3", arch)
        assert verdict(fig7_lb(), profile) == "positive"

    @pytest.mark.parametrize("arch", ["x86_64", "mips64"])
    def test_strong_mappings_show_none(self, arch):
        profile = make_profile("llvm", "-O3", arch)
        assert verdict(fig7_lb(), profile) in ("equal", "negative")

    @pytest.mark.parametrize("arch", ["aarch64", "armv7", "riscv64", "ppc64"])
    def test_positives_vanish_under_rc11_lb(self, arch):
        """The paper's Claim 4."""
        profile = make_profile("llvm", "-O3", arch)
        assert verdict(fig7_lb(), profile, source_model="rc11+lb") == "equal"

    @pytest.mark.parametrize("compiler", ["llvm", "gcc"])
    @pytest.mark.parametrize("opt", ["-O1", "-O2", "-O3"])
    def test_stable_across_flags(self, compiler, opt):
        profile = make_profile(compiler, opt, "aarch64")
        assert verdict(fig7_lb(), profile) == "positive"


class TestFig1ExchangeBug:
    def test_reported_epoch_buggy(self):
        """The paper reported [38] against current LLVM."""
        profile = make_profile("llvm", "-O2", "aarch64", version=16)
        result = run_test_tv(fig1_exchange(), profile)
        assert result.found_bug

    def test_fixed_epoch_clean(self):
        profile = make_profile("llvm", "-O2", "aarch64", version=17)
        assert verdict(fig1_exchange(), profile) in ("equal", "negative")

    def test_bug_witness_is_paper_outcome(self):
        profile = make_profile("llvm", "-O2", "aarch64", version=16)
        result = run_test_tv(fig1_exchange(), profile)
        witnesses = [o.as_dict() for o in result.comparison.positive]
        assert any(
            o.get("out_P1_r0") == 0 and o.get("y") == 2 for o in witnesses
        )


class TestFig10RmwBugs:
    @pytest.mark.parametrize("compiler,version", [("llvm", 11), ("gcc", 9)])
    def test_past_versions_buggy(self, compiler, version):
        profile = make_profile(compiler, "-O2", "aarch64", version=version)
        assert verdict(fig10_mp_rmw(), profile) == "positive"

    @pytest.mark.parametrize("compiler,version", [("llvm", 16), ("gcc", 12)])
    def test_latest_versions_fixed(self, compiler, version):
        """'We assisted Arm's compiler teams ... showing that the latest
        versions of LLVM and GCC no longer exhibit them.'"""
        profile = make_profile(compiler, "-O2", "aarch64", version=version)
        assert verdict(fig10_mp_rmw(), profile) in ("equal", "negative")

    def test_heisenbug_disappears_when_result_observed(self):
        """§IV-B: observe r1 in the condition and the bug hides — the
        RMW result is then live, so no ST-form is selected."""
        source = fig10_mp_rmw()
        heisen = parse_c_litmus(
            """
C fig10_observed
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_thread_fence(memory_order_release);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  int r1 = atomic_fetch_add_explicit(y, 1, memory_order_relaxed);
  atomic_thread_fence(memory_order_acquire);
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=0 /\\ P1:r1=1 /\\ y=2)
""",
            "fig10_observed",
        )
        profile = make_profile("llvm", "-O2", "aarch64", version=11)
        assert verdict(source, profile) == "positive"      # indirect: found
        assert verdict(heisen, profile) != "positive"      # direct: hidden


class TestFig9LocalVariableProblem:
    def test_unaugmented_masks_all_outcomes(self):
        profile = make_profile("llvm", "-O2", "aarch64")
        result = run_test_tv(fig9_lb_plain(), profile, augment=False)
        assert len(result.comparison.target_outcomes) == 1

    def test_augmentation_restores_observability(self):
        profile = make_profile("llvm", "-O2", "aarch64")
        result = run_test_tv(fig9_lb_plain(), profile, augment=True)
        assert len(result.comparison.target_outcomes) == 4


class Test128BitBugs:
    def test_ldp_seqcst_bug(self):
        buggy = make_profile("llvm", "-O2", "aarch64", version=16, v84=True)
        fixed = make_profile("llvm", "-O2", "aarch64", version=17, v84=True)
        assert verdict(atomics_128(), buggy) == "positive"
        assert verdict(atomics_128(), fixed) in ("equal", "negative")

    def test_stp_wrong_endian(self):
        source = parse_c_litmus(
            """
C stp_endian
{ *x = 0; }
void P0(atomic_int128* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
void P1(atomic_int128* x) {
  __int128 r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=1)
""",
            "stp_endian",
        )
        buggy = make_profile("llvm", "-O2", "aarch64", version=16, v84=True)
        result = run_test_tv(source, buggy)
        flipped = {o.as_dict().get("x") for o in result.comparison.positive}
        assert (1 << 64) in flipped  # the endian-swapped value

    def test_const_load_crash(self):
        source = parse_c_litmus(
            """
C const_load
{ const *c = 5; }
void P0(atomic_int128* c) {
  __int128 r0 = atomic_load_explicit(c, memory_order_seq_cst);
}
exists (P0:r0=5)
""",
            "const_load",
        )
        v80 = make_profile("llvm", "-O2", "aarch64", version=16, v84=False)
        result = run_test_tv(source, v80)
        assert result.target_result.has_const_violation
        fixed = make_profile("llvm", "-O2", "aarch64", version=17, v84=True)
        result_fixed = run_test_tv(source, fixed)
        assert not result_fixed.target_result.has_const_violation


class TestArmv7ModelBug:
    def test_buggy_model_false_positive(self):
        profile = make_profile("llvm", "-O2", "armv7")
        assert verdict(sb_sc(), profile, target_model="armv7_buggy") == "positive"

    def test_fixed_model_clean(self):
        profile = make_profile("llvm", "-O2", "armv7")
        assert verdict(sb_sc(), profile) in ("equal", "negative")


class TestGccArmv7O1Quirk:
    """§IV-D: gcc -O1 drops a control dependency; -O2+ masks it again."""

    SOURCE = """
C lb_ctrl2
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0 == 1) { atomic_store_explicit(y, 1, memory_order_relaxed); }
  else { atomic_store_explicit(y, 1, memory_order_relaxed); }
}
void P1(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  if (r0 == 1) { atomic_store_explicit(x, 1, memory_order_relaxed); }
  else { atomic_store_explicit(x, 1, memory_order_relaxed); }
}
exists (P0:r0=1 /\\ P1:r0=1)
"""

    def litmus(self):
        return parse_c_litmus(self.SOURCE, "lb_ctrl2")

    def test_gcc_o1_drops_ctrl_dep(self):
        profile = make_profile("gcc", "-O1", "armv7")
        assert verdict(self.litmus(), profile) == "positive"

    def test_clang_o1_keeps_ctrl_dep(self):
        profile = make_profile("llvm", "-O1", "armv7")
        assert verdict(self.litmus(), profile) != "positive"

    def test_gcc_o2_masked_by_data_dep(self):
        profile = make_profile("gcc", "-O2", "armv7")
        assert verdict(self.litmus(), profile) != "positive"


class TestScalability:
    def test_fig11_unoptimised_exceeds_budget(self):
        """Claim 5 precondition: the raw compiled test explodes under
        brute-force enumeration; the staged solver prunes the explosion
        away at identical outcomes."""
        from repro.core.errors import SimulationTimeout
        from repro.tools import assembly_to_litmus, compile_and_disassemble, prepare
        from repro.herd import exhaustive_stages, simulate_asm

        profile = make_profile("llvm", "-O0", "aarch64")
        prepared = prepare(fig11_lb3())
        c2s = compile_and_disassemble(prepared, profile)
        raw = assembly_to_litmus(c2s.obj, prepared.condition,
                                 listing=c2s.listing, optimise=False)
        with pytest.raises(SimulationTimeout):
            simulate_asm(raw, budget=Budget(max_candidates=400),
                         stages=exhaustive_stages())
        # the staged solver survives the same budget: coherence pruning
        # collapses the factorial coherence space before it is expanded
        staged = simulate_asm(raw, budget=Budget(max_candidates=400))
        assert staged.stats.total_pruned > 0
        exhaustive = simulate_asm(raw, stages=exhaustive_stages())
        assert staged.outcomes == exhaustive.outcomes
        assert staged.stats.candidates < exhaustive.stats.candidates

    def test_fig11_optimised_terminates_quickly(self):
        """Claim 5: with s2l optimisation, milliseconds."""
        profile = make_profile("llvm", "-O0", "aarch64")
        result = run_test_tv(
            fig11_lb3(), profile, budget=Budget(max_candidates=500_000)
        )
        assert result.target_seconds < 2.0
        assert result.verdict in ("positive", "ub-masked")


class TestDifferentialMode:
    def test_same_compiler_different_levels(self):
        a = make_profile("llvm", "-O1", "aarch64")
        b = make_profile("llvm", "-O3", "aarch64")
        _, _, comparison = differential_outcomes(fig7_lb(), a, b)
        assert comparison.verdict() == "equal"

    def test_cross_compiler(self):
        a = make_profile("llvm", "-O2", "aarch64")
        b = make_profile("gcc", "-O2", "aarch64")
        _, _, comparison = differential_outcomes(fig7_lb(), a, b)
        assert comparison.verdict() == "equal"

    def test_cross_arch_rejected(self):
        from repro.core.errors import ReproError

        a = make_profile("llvm", "-O2", "aarch64")
        b = make_profile("llvm", "-O2", "x86_64")
        with pytest.raises(ReproError):
            differential_outcomes(fig7_lb(), a, b)
