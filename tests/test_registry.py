"""The generic Registry protocol and the registries ported onto it."""

import pytest

from repro.asm.isa.base import ISAS, IsaError, get_isa, list_isas
from repro.baselines import BASELINES, get_baseline, list_baselines
from repro.cat.registry import MODELS, get_model, get_source, list_models, normalise
from repro.compiler.profiles import EPOCHS, make_profile, parse_profile
from repro.core.errors import CompilationError, ModelError
from repro.core.registry import Registry, RegistryError
from repro.tools.diy import SHAPES, get_shape, shape_names


class TestRegistryProtocol:
    def test_register_and_get(self):
        reg = Registry("thing")
        reg.register("alpha", 1)
        assert reg.get("alpha") == 1
        assert "alpha" in reg
        assert reg["Alpha"] == 1  # default normalisation case-folds

    def test_decorator_registration(self):
        reg = Registry("factory")

        @reg.register("builder", doc="makes things")
        def build():
            return 42

        assert reg.get("builder") is build
        assert reg.describe("builder")["doc"] == "makes things"

    def test_aliases_resolve_and_are_listed(self):
        reg = Registry("thing")
        reg.register("canonical", 1, aliases=("alt", "other"))
        assert reg.get("alt") == 1
        assert reg.resolve("other") == "canonical"
        assert reg.describe("canonical")["aliases"] == ["alt", "other"]
        # aliases are not canonical names
        assert reg.names() == ["canonical"]

    def test_alias_added_after_the_fact(self):
        reg = Registry("thing")
        reg.register("canonical", 1)
        reg.alias("late", "canonical")
        assert reg.get("late") == 1

    def test_unknown_name_did_you_mean(self):
        reg = Registry("thing")
        reg.register("campaign", 1)
        with pytest.raises(RegistryError, match="did you mean campaign"):
            reg.get("campain")

    def test_unknown_name_lists_available(self):
        reg = Registry("thing")
        reg.register("a", 1)
        reg.register("b", 2)
        with pytest.raises(RegistryError, match="available: a, b"):
            reg.get("zzz")

    def test_custom_error_class(self):
        reg = Registry("model", error=ModelError)
        with pytest.raises(ModelError):
            reg.get("nope")

    def test_overlay_shadows_without_mutating_parent(self):
        parent = Registry("thing")
        parent.register("shared", "parent-value")
        child = parent.overlay()
        child.register("shared", "child-value")
        child.register("private", "only-here")
        assert child.get("shared") == "child-value"
        assert parent.get("shared") == "parent-value"
        assert "private" in child and "private" not in parent
        assert child.is_local("shared") and not parent.overlay().is_local("shared")

    def test_is_local_resolves_parent_aliases(self):
        """A parent-defined alias for a locally shadowed entry is local."""
        parent = Registry("thing")
        parent.register("canonical", 1, aliases=("alt",))
        child = parent.overlay()
        child.register("canonical", 2)
        assert child.is_local("alt")
        assert child.get("alt") == 2

    def test_overlay_falls_through_to_parent(self):
        parent = Registry("thing")
        parent.register("base", 7, aliases=("b",))
        child = parent.overlay()
        assert child.get("base") == 7
        assert child.get("b") == 7  # parent aliases visible too
        assert child.names() == ["base"]

    def test_metadata_listing(self):
        reg = Registry("thing")
        reg.register("x", 1, doc="the x")
        entries = reg.metadata()
        assert entries == [{"name": "x", "aliases": [], "doc": "the x"}]


class TestModelRegistry:
    ALL_MODELS = (
        "sc", "rc11", "rc11+lb", "c11_simp", "c11_partialsc", "x86tso",
        "aarch64", "armv7", "armv7_buggy", "riscv", "ppc", "mips",
    )

    def test_every_model_listed(self):
        assert list_models() == sorted(self.ALL_MODELS)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_cat_suffix_and_case_for_all_models(self, name):
        base = get_model(name)
        assert get_model(f"{name}.cat") is base
        assert get_model(name.upper()) is base
        assert get_model(f"  {name}.CAT ") is base

    def test_x86_tso_alias_paths(self):
        base = get_model("x86tso")
        assert get_model("x86-tso") is base
        assert get_model("x86-tso.cat") is base
        assert get_model("X86-TSO") is base  # the in-source header name
        assert normalise("x86-tso.cat") == "x86tso"

    def test_c11_partialsc_alias_fixed(self):
        """The intended alias rewrite was hyphen→underscore (the model's
        in-source header is ``C11-PARTIALSC``); the old code rewrote the
        name to itself, a no-op."""
        base = get_model("c11_partialsc")
        assert get_model("c11-partialsc") is base
        assert get_model("C11-PARTIALSC") is base
        assert get_model("c11-partialsc.cat") is base
        assert normalise("C11-PARTIALSC.cat") == "c11_partialsc"

    def test_in_source_header_aliases(self):
        assert get_model("RC11-LB") is get_model("rc11+lb")
        assert get_model("c11-simp") is get_model("c11_simp")
        assert get_model("armv7-buggy") is get_model("armv7_buggy")

    def test_unknown_model_suggests(self):
        with pytest.raises(ModelError, match="did you mean"):
            get_model("rc12")

    def test_get_source_via_alias(self):
        assert get_source("x86-tso") == get_source("x86tso")

    def test_registry_metadata_has_aliases(self):
        meta = {entry["name"]: entry for entry in MODELS.metadata()}
        assert "x86-tso" in meta["x86tso"]["aliases"]
        assert "c11-partialsc" in meta["c11_partialsc"]["aliases"]


class TestPortedRegistries:
    def test_isa_registry(self):
        assert list_isas() == sorted(
            ["aarch64", "armv7", "x86_64", "riscv64", "ppc64", "mips64"]
        )
        assert get_isa("aarch64").name == "aarch64"
        with pytest.raises(IsaError, match="did you mean"):
            get_isa("aarch65")
        assert ISAS.describe("x86_64")["name"] == "x86_64"

    def test_shape_registry(self):
        assert get_shape("LB").name == "LB"
        assert get_shape("lb") is get_shape("LB")  # normalised
        assert "LB" in shape_names() and "2+2W" in shape_names()
        with pytest.raises(RegistryError, match="did you mean"):
            get_shape("LBX")
        assert SHAPES.describe("iriw")["threads"] == 4

    def test_epoch_registry(self):
        assert EPOCHS.get("llvm-16") == make_profile("llvm", "-O2", "aarch64").bug_flags
        with pytest.raises(CompilationError, match="did you mean"):
            make_profile("llvm", "-O2", "aarch64", version=15)

    def test_parse_profile_round_trip(self):
        for compiler, opt in (("llvm", "-O3"), ("gcc", "-Og")):
            for arch in ("aarch64", "x86_64", "riscv64"):
                profile = make_profile(compiler, opt, arch)
                assert parse_profile(profile.name) == profile
        old = make_profile("gcc", "-O1", "armv7", version=9)
        assert parse_profile("gcc-O1-ARM-9") == old
        with pytest.raises(CompilationError, match="bad profile name"):
            parse_profile("just-llvm")

    def test_baseline_registry(self):
        assert list_baselines() == ["c4", "cmmtest", "validc"]
        assert callable(get_baseline("cmm-test"))  # alias
        with pytest.raises(RegistryError, match="did you mean"):
            get_baseline("valid")
