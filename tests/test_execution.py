"""Unit tests for candidate executions (repro.core.execution)."""

import pytest

from repro.core.events import Event, EventKind, INIT_TID, MemoryOrder
from repro.core.execution import Execution, Outcome
from repro.core.relations import Relation


def ev(eid, tid, kind, loc=None, value=None, order=MemoryOrder.NA, tags=()):
    return Event(eid=eid, tid=tid, kind=kind, loc=loc, value=value,
                 order=order, tags=frozenset(tags))


def mp_execution():
    """A hand-built MP execution: P0 writes x then y; P1 reads y=1, x=0."""
    events = [
        ev(0, INIT_TID, EventKind.WRITE, "x", 0, tags=("INIT",)),
        ev(1, INIT_TID, EventKind.WRITE, "y", 0, tags=("INIT",)),
        ev(2, 0, EventKind.WRITE, "x", 1, MemoryOrder.RLX),
        ev(3, 0, EventKind.WRITE, "y", 1, MemoryOrder.RLX),
        ev(4, 1, EventKind.READ, "y", 1, MemoryOrder.RLX),
        ev(5, 1, EventKind.READ, "x", 0, MemoryOrder.RLX),
    ]
    po = Relation([(2, 3), (4, 5)])
    rf = Relation([(3, 4), (0, 5)])
    co = Relation([(0, 2), (1, 3)])
    return Execution(events, po=po, rf=rf, co=co)


class TestDerivedRelations:
    def test_fr_derivation(self):
        execution = mp_execution()
        # read of x=0 (event 5) reads init (0), which is co-before W x=1 (2)
        assert (5, 2) in execution.fr

    def test_same_location(self):
        loc = mp_execution().same_location()
        assert (0, 2) in loc and (2, 0) in loc
        assert (2, 3) not in loc

    def test_po_loc(self):
        execution = mp_execution()
        assert execution.po_loc().is_empty()  # po pairs touch distinct locs

    def test_internal_external(self):
        execution = mp_execution()
        assert (2, 3) in execution.internal()
        assert (2, 4) in execution.external()
        # init events count as external sources
        assert (0, 5) in execution.external()

    def test_rfe_coe_fre(self):
        execution = mp_execution()
        assert (3, 4) in execution.rfe()
        assert execution.rfi().is_empty()
        assert (5, 2) in execution.fre()
        assert (0, 2) in execution.coe()

    def test_com_is_union(self):
        execution = mp_execution()
        assert execution.com() == execution.rf | execution.co | execution.fr

    def test_event_set_views(self):
        execution = mp_execution()
        assert execution.reads() == frozenset({4, 5})
        assert execution.writes() == frozenset({0, 1, 2, 3})
        assert execution.locations() == frozenset({"x", "y"})
        assert execution.threads() == frozenset({0, 1})
        assert execution.tagged("INIT") == frozenset({0, 1})


class TestFinalMemory:
    def test_co_maximal_write_wins(self):
        execution = mp_execution()
        assert execution.final_memory() == {"x": 1, "y": 1}

    def test_untouched_location_keeps_init(self):
        events = [
            ev(0, INIT_TID, EventKind.WRITE, "x", 7, tags=("INIT",)),
        ]
        execution = Execution(events, Relation.empty(), Relation.empty(),
                              Relation.empty())
        assert execution.final_memory() == {"x": 7}

    def test_non_total_co_raises(self):
        events = [
            ev(0, INIT_TID, EventKind.WRITE, "x", 0, tags=("INIT",)),
            ev(1, 0, EventKind.WRITE, "x", 1),
            ev(2, 1, EventKind.WRITE, "x", 2),
        ]
        execution = Execution(events, Relation.empty(), Relation.empty(),
                              Relation([(0, 1), (0, 2)]))
        with pytest.raises(ValueError):
            execution.final_memory()


class TestWellFormedness:
    def test_valid_execution_passes(self):
        mp_execution().check_well_formed()

    def test_rf_value_mismatch_rejected(self):
        events = [
            ev(0, INIT_TID, EventKind.WRITE, "x", 0, tags=("INIT",)),
            ev(1, 0, EventKind.READ, "x", 5),
        ]
        execution = Execution(events, Relation.empty(), Relation([(0, 1)]),
                              Relation.empty())
        with pytest.raises(ValueError, match="value mismatch"):
            execution.check_well_formed()

    def test_read_without_source_rejected(self):
        events = [
            ev(0, INIT_TID, EventKind.WRITE, "x", 0, tags=("INIT",)),
            ev(1, 0, EventKind.READ, "x", 0),
        ]
        execution = Execution(events, Relation.empty(), Relation.empty(),
                              Relation.empty())
        with pytest.raises(ValueError, match="no rf source"):
            execution.check_well_formed()

    def test_cross_location_rf_rejected(self):
        events = [
            ev(0, INIT_TID, EventKind.WRITE, "x", 0, tags=("INIT",)),
            ev(1, 0, EventKind.READ, "y", 0),
        ]
        execution = Execution(events, Relation.empty(), Relation([(0, 1)]),
                              Relation.empty())
        with pytest.raises(ValueError, match="crosses locations"):
            execution.check_well_formed()

    def test_cyclic_co_rejected(self):
        events = [
            ev(0, 0, EventKind.WRITE, "x", 1),
            ev(1, 1, EventKind.WRITE, "x", 2),
        ]
        execution = Execution(events, Relation.empty(), Relation.empty(),
                              Relation([(0, 1), (1, 0)]))
        with pytest.raises(ValueError):
            execution.check_well_formed()

    def test_duplicate_event_ids_rejected(self):
        events = [ev(0, 0, EventKind.WRITE, "x", 1),
                  ev(0, 1, EventKind.WRITE, "y", 1)]
        with pytest.raises(ValueError, match="duplicate"):
            Execution(events, Relation.empty(), Relation.empty(),
                      Relation.empty())
