"""Persistent campaign store, content digests, sharding, and the
campaign-engine bugfixes (cache identity, pool lifecycle, verdict
strictness)."""

import json

import pytest

from repro.lang.parser import parse_c_litmus
from repro.lang.printer import print_c_litmus
from repro.pipeline import campaign as campaign_module
from repro.pipeline.campaign import (
    CampaignCell,
    ResultCache,
    SourceSimCache,
    merge_reports,
    run_campaign,
)
from repro.pipeline.store import STORE_SCHEMA, CampaignStore, cell_key, record_key
from repro.pipeline.telechat import (
    comparison_from_record,
    outcomes_from_jsonable,
    outcomes_to_jsonable,
)
from repro.tools.diy import DiyConfig, build_test, get_shape

CONFIG = DiyConfig(
    shapes=("LB",), orders=("rlx",), fences=(None,),
    deps=("po", "ctrl2"), variants=("load-store",),
)

ARCHES = ("aarch64", "x86_64")
OPTS = ("-O1", "-O2")
COMPILERS = ("llvm", "gcc")


def small_run(**kwargs):
    return run_campaign(config=CONFIG, arches=ARCHES, opts=OPTS,
                        compilers=COMPILERS, **kwargs)


# --------------------------------------------------------------------------- #
# content digests
# --------------------------------------------------------------------------- #
class TestDigest:
    def test_name_is_not_identity(self):
        a = build_test(get_shape("LB"), "rlx", name="LB001")
        b = build_test(get_shape("LB"), "rlx", name="TOTALLY-DIFFERENT")
        assert a.digest() == b.digest()

    def test_content_is_identity(self):
        a = build_test(get_shape("LB"), "rlx", name="LB001")
        b = build_test(get_shape("LB"), "sc", name="LB001")
        assert a.digest() != b.digest()

    def test_printer_round_trip_preserves_digest(self):
        for shape in ("LB", "MP", "SB", "WRC"):
            for dep in ("po", "ctrl2", "data"):
                original = build_test(get_shape(shape), "rlx", dep=dep)
                reparsed = parse_c_litmus(print_c_litmus(original))
                assert reparsed.digest() == original.digest(), (shape, dep)

    def test_digest_stable_across_processes(self):
        # a fixed-content test must hash identically forever: stored
        # verdicts from past sessions key on it
        litmus = build_test(get_shape("LB"), "rlx", name="LB001")
        assert litmus.digest() == build_test(get_shape("LB"), "rlx").digest()
        assert len(litmus.digest()) == 16
        int(litmus.digest(), 16)  # hex


# --------------------------------------------------------------------------- #
# the cache-identity bugfix: name collisions across DiyConfigs
# --------------------------------------------------------------------------- #
class TestCacheIdentity:
    def test_name_collision_does_not_replay_stale_verdicts(self):
        """Two different tests both named LB001 must not share cache
        entries when caches persist across campaigns (the pre-digest
        code keyed by ``litmus.name`` and replayed the first test's
        verdicts for the second)."""
        relaxed = build_test(get_shape("LB"), "rlx", name="LB001")
        strong = build_test(get_shape("LB"), "sc", name="LB001")
        source_cache, result_cache = SourceSimCache(), ResultCache()
        first = run_campaign(
            tests=[relaxed], arches=("aarch64",), opts=("-O2",),
            compilers=("llvm",),
            source_cache=source_cache, result_cache=result_cache,
        )
        second = run_campaign(
            tests=[strong], arches=("aarch64",), opts=("-O2",),
            compilers=("llvm",),
            source_cache=source_cache, result_cache=result_cache,
        )
        # the relaxed LB shows the positive difference; the seq_cst one
        # must not inherit it from the shared cache
        assert first.total_positive() == 1
        assert second.total_positive() == 0
        assert second.cached_cells == 0
        assert second.source_simulations == 1

    def test_same_content_different_name_shares_cache(self):
        a = build_test(get_shape("LB"), "rlx", name="LB001")
        b = build_test(get_shape("LB"), "rlx", name="LB999")
        source_cache, result_cache = SourceSimCache(), ResultCache()
        run_campaign(tests=[a], arches=("aarch64",), opts=("-O2",),
                     compilers=("llvm",),
                     source_cache=source_cache, result_cache=result_cache)
        again = run_campaign(tests=[b], arches=("aarch64",), opts=("-O2",),
                             compilers=("llvm",),
                             source_cache=source_cache,
                             result_cache=result_cache)
        assert again.cached_cells == 1
        assert again.source_simulations == 0
        # the report speaks the *current* test's name
        assert again.positives == [("LB999", "aarch64", "-O2", "llvm")]


# --------------------------------------------------------------------------- #
# verdict strictness
# --------------------------------------------------------------------------- #
class TestCellVerdicts:
    def test_known_verdicts_tally(self):
        cell = CampaignCell()
        for verdict in ("positive", "negative", "equal", "ub-masked"):
            cell.record(verdict)
        assert cell.total == 4
        assert (cell.positive, cell.negative, cell.equal, cell.ub_masked) == (
            1, 1, 1, 1,
        )

    def test_unknown_verdict_raises(self):
        cell = CampaignCell()
        with pytest.raises(ValueError, match="unknown verdict"):
            cell.record("suspicious")
        # nothing was silently counted as equal
        assert cell.total == 0


# --------------------------------------------------------------------------- #
# pool lifecycle
# --------------------------------------------------------------------------- #
class TestPoolLifecycle:
    def test_thread_pool_shut_down_on_unexpected_exception(self, monkeypatch):
        pools = []
        real_pool = campaign_module.ThreadPoolExecutor

        def tracking_pool(*args, **kwargs):
            pool = real_pool(*args, **kwargs)
            pools.append(pool)
            return pool

        def explode(*args, **kwargs):
            raise RuntimeError("not a simulation failure")

        monkeypatch.setattr(campaign_module, "ThreadPoolExecutor", tracking_pool)
        monkeypatch.setattr(campaign_module, "test_compilation", explode)
        with pytest.raises(RuntimeError, match="not a simulation failure"):
            run_campaign(config=CONFIG, arches=("aarch64",), opts=("-O2",),
                         compilers=("llvm",), workers=2)
        assert len(pools) == 1
        assert pools[0]._shutdown  # workers released, not leaked


# --------------------------------------------------------------------------- #
# the persistent store
# --------------------------------------------------------------------------- #
class TestStore:
    def test_round_trip_resimulates_nothing(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        cold = small_run(store=path)
        assert cold.store_hits == 0
        total_cells = sum(c.total for c in cold.cells.values())

        # reload from disk in a fresh store object: the acceptance bar —
        # a warm re-run re-simulates zero cells
        store = CampaignStore(path)
        assert len(store) == total_cells == store.loaded
        warm = small_run(store=store, resume=True)
        assert warm.store_hits == total_cells
        assert warm.source_simulations == 0
        assert store.appended == 0

        # identical Table IV body and drill-down
        assert warm.positives == cold.positives
        for key, cell in cold.cells.items():
            other = warm.cells[key]
            assert (cell.positive, cell.negative, cell.equal,
                    cell.ub_masked) == (other.positive, other.negative,
                                        other.equal, other.ub_masked)

    def test_without_resume_store_only_records(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        small_run(store=path)
        store = CampaignStore(path)
        rerun = small_run(store=store)
        assert rerun.store_hits == 0
        assert rerun.source_simulations > 0
        # last-write-wins: re-recording supersedes, not duplicates
        assert len(CampaignStore(path)) == len(store)

    def test_records_are_jsonable_and_rebuild_comparisons(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        small_run(store=path)
        store = CampaignStore(path)
        positives = [r for r in store.records() if r.get("verdict") == "positive"]
        assert positives
        for record in store.records():
            json.dumps(record)  # plain JSON all the way down
            assert record["schema"] == STORE_SCHEMA
            assert record_key(record) == cell_key(
                record["digest"], record["profile"], record["source_model"],
                record["augment"], record["budget_candidates"],
            )
        comparison = comparison_from_record(positives[0])
        assert comparison.verdict() == "positive"
        assert comparison.positive  # the differing outcomes survived the disk

    def test_outcome_set_round_trip(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        small_run(store=path)
        record = CampaignStore(path).records()[0]
        outcomes = outcomes_from_jsonable(record["source_outcomes"])
        assert outcomes_to_jsonable(outcomes) == record["source_outcomes"]

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        small_run(store=path)
        intact = len(CampaignStore(path))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "digest": "abc", "trunc')
        recovered = CampaignStore(path)
        assert len(recovered) == intact
        assert recovered.skipped == 1

    def test_foreign_schema_records_are_skipped(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"schema": 999, "digest": "x"}) + "\n")
        store = CampaignStore(path)
        assert len(store) == 0 and store.skipped == 1

    def test_interrupted_campaign_persists_completed_cells(
        self, tmp_path, monkeypatch
    ):
        """Verdicts stream to the store as they land, so a crashed
        campaign resumes from every cell that finished."""
        path = tmp_path / "campaign.jsonl"
        calls = []
        real = campaign_module.test_compilation

        def explode_on_third(*args, **kwargs):
            calls.append(1)
            if len(calls) >= 3:
                raise RuntimeError("simulated crash")
            return real(*args, **kwargs)

        monkeypatch.setattr(campaign_module, "test_compilation",
                            explode_on_third)
        with pytest.raises(RuntimeError, match="simulated crash"):
            small_run(store=path)
        survivors = CampaignStore(path)
        assert len(survivors) == 2  # the cells that finished before the crash
        # and a resumed run only re-simulates what the crash swallowed
        monkeypatch.setattr(campaign_module, "test_compilation", real)
        resumed = small_run(store=path, resume=True)
        assert resumed.store_hits == 2

    def test_unbuildable_profile_is_an_error_cell_not_an_abort(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        report = run_campaign(
            tests=[build_test(get_shape("LB"), "rlx", name="LB001")],
            arches=("no-such-arch",), opts=("-O2",), compilers=("llvm",),
            store=path,
        )
        assert report.cells[("no-such-arch", "-O2", "llvm")].errors == 1
        assert report.compiled_tests == 0
        # the error verdict is stored (and keyed) like any other
        assert len(CampaignStore(path)) == 1
        assert CampaignStore(path).records()[0]["status"] == "error"

    def test_resume_without_store_rejected(self):
        """The API and the CLI agree: resume without a store is a usage
        error, not a silent full-cost cold run."""
        with pytest.raises(ValueError, match="needs a store"):
            small_run(resume=True)

    def test_pool_exception_keeps_other_finished_verdicts(
        self, tmp_path, monkeypatch
    ):
        """One crashing cell must not discard the verdicts of cells the
        pool still ran to completion."""
        path = tmp_path / "campaign.jsonl"
        real = campaign_module.test_compilation

        def explode_for_gcc(litmus, profile, **kwargs):
            if profile.compiler == "gcc":
                raise RuntimeError("simulated crash")
            return real(litmus, profile, **kwargs)

        monkeypatch.setattr(campaign_module, "test_compilation",
                            explode_for_gcc)
        with pytest.raises(RuntimeError, match="simulated crash"):
            small_run(store=path, workers=2)
        survivors = CampaignStore(path)
        # every llvm cell finished and was persisted despite gcc crashing
        llvm_cells = sum(
            1 for r in survivors.records() if r["compiler"] == "llvm"
        )
        assert llvm_cells == len(survivors) > 0

    def test_process_pool_rejects_in_memory_caches(self):
        with pytest.raises(ValueError, match="not shared with worker"):
            small_run(processes=2, result_cache=ResultCache())

    def test_store_path_accepted_directly(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        report = run_campaign(
            tests=[build_test(get_shape("LB"), "rlx", name="LB001")],
            arches=("aarch64",), opts=("-O2",), compilers=("llvm",),
            store=str(path),
        )
        assert report.compiled_tests == 1
        assert path.exists() and len(CampaignStore(path)) == 1


# --------------------------------------------------------------------------- #
# sharding and the deterministic merge
# --------------------------------------------------------------------------- #
class TestShardMerge:
    def test_shards_partition_the_work(self):
        single = small_run()
        shards = [small_run(shard=(k, 3)) for k in range(3)]
        assert sum(sum(c.total for c in s.cells.values()) for s in shards) \
            == sum(c.total for c in single.cells.values())

    def test_merged_shards_equal_single_run_table(self):
        single = small_run()
        shards = [small_run(shard=(k, 4)) for k in range(4)]
        merged = merge_reports(shards)
        # wall-clock is the one legitimately run-dependent field
        single.elapsed_seconds = merged.elapsed_seconds = 0.0
        assert merged.table() == single.table()
        assert merged.positives == sorted(single.positives)
        assert merged.cells.keys() == single.cells.keys()

    def test_merge_order_does_not_matter(self):
        shards = [small_run(shard=(k, 4)) for k in range(4)]
        forward = merge_reports(shards)
        backward = merge_reports(list(reversed(shards)))
        forward.elapsed_seconds = backward.elapsed_seconds = 0.0
        assert forward.table() == backward.table()
        assert forward.positives == backward.positives

    def test_sharded_stores_resume_and_merge(self, tmp_path):
        """The full distributed flow: one store file per shard, warm
        resume per shard, merge equals the single run."""
        single = small_run()
        cold_reports = []
        for k in range(2):
            path = tmp_path / f"shard{k}.jsonl"
            cold_reports.append(small_run(shard=(k, 2), store=path))
            warm = small_run(shard=(k, 2), store=path, resume=True)
            # the warm shard replays its store: zero re-simulation
            assert warm.source_simulations == 0
            assert warm.positives == cold_reports[-1].positives
        merged = merge_reports(cold_reports)
        single.elapsed_seconds = merged.elapsed_seconds = 0.0
        assert merged.table() == single.table()

    def test_bad_shard_rejected(self):
        with pytest.raises(ValueError, match="bad shard"):
            small_run(shard=(4, 4))
        with pytest.raises(ValueError, match="bad shard"):
            small_run(shard=(-1, 2))

    def test_merge_rejects_mixed_models(self):
        a = small_run(shard=(0, 2))
        b = run_campaign(config=CONFIG, arches=ARCHES, opts=OPTS,
                         compilers=COMPILERS, source_model="rc11+lb",
                         shard=(1, 2))
        with pytest.raises(ValueError, match="source models"):
            merge_reports([a, b])


# --------------------------------------------------------------------------- #
# the process-pool backend
# --------------------------------------------------------------------------- #
class TestProcessPool:
    def test_process_pool_matches_serial(self):
        serial = run_campaign(config=CONFIG, arches=("aarch64", "armv7"),
                              opts=("-O2",), compilers=("llvm",))
        parallel = run_campaign(config=CONFIG, arches=("aarch64", "armv7"),
                                opts=("-O2",), compilers=("llvm",),
                                processes=2)
        assert parallel.processes == 2
        assert parallel.positives == serial.positives
        assert parallel.source_simulations == serial.source_simulations
        for key, cell in serial.cells.items():
            other = parallel.cells[key]
            assert (cell.positive, cell.negative, cell.equal) == (
                other.positive, other.negative, other.equal
            )

    def test_process_pool_fills_a_store_resumable_in_process(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        cold = run_campaign(config=CONFIG, arches=("aarch64",), opts=("-O2",),
                            compilers=("llvm",), processes=2, store=path)
        warm = run_campaign(config=CONFIG, arches=("aarch64",), opts=("-O2",),
                            compilers=("llvm",), store=path, resume=True)
        assert warm.store_hits == sum(c.total for c in cold.cells.values())
        assert warm.source_simulations == 0
        assert warm.positives == cold.positives


# --------------------------------------------------------------------------- #
# CLI plumbing
# --------------------------------------------------------------------------- #
class TestCliFlags:
    def test_campaign_store_resume_shard_flags(self, tmp_path, capsys):
        from repro.pipeline.cli import main

        path = str(tmp_path / "store.jsonl")
        args = ["campaign", "--small", "--arch", "aarch64", "--opt=-O2",
                "--store", path]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "store" in out and "appended" in out

        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 source simulations" in out

        assert main(args + ["--shard", "0/2"]) == 0

    def test_resume_requires_store(self, capsys):
        from repro.pipeline.cli import main

        assert main(["campaign", "--small", "--resume"]) == 2
        assert "--resume needs --store" in capsys.readouterr().err

    def test_bad_shard_rejected_by_parser(self):
        from repro.pipeline.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["campaign", "--shard", "4/4"])
        with pytest.raises(SystemExit):
            parser.parse_args(["campaign", "--shard", "nonsense"])
