"""Tests for IR lowering and the optimisation passes."""

import pytest

from repro.compiler.ir import IRInstr, IROp, IRProgram
from repro.compiler.lower import lower
from repro.compiler.passes import (
    branch_fold,
    const_fold,
    copy_prop,
    dead_local_elim,
    if_convert_select,
    merge_identical_branches,
    optimise,
    pipeline_for,
)
from repro.compiler.profiles import make_profile
from repro.core.events import MemoryOrder
from repro.lang import parse_c_litmus
from repro.papertests import fig1_exchange, fig7_lb, fig9_lb_plain, fig10_mp_rmw


def ops(body):
    return [i.op for i in body]


class TestLowering:
    def test_fig7_shape(self):
        program = lower(fig7_lb())
        body = program.functions[0].body
        assert ops(body) == [IROp.LOAD, IROp.BIN, IROp.STORE, IROp.RET]

    def test_relaxed_fence_lowers_to_nothing(self):
        program = lower(fig7_lb())
        assert not any(i.op is IROp.FENCE for i in program.functions[0].body)

    def test_stronger_fence_kept(self):
        program = lower(fig10_mp_rmw())
        fences = [i for i in program.functions[0].body if i.op is IROp.FENCE]
        assert fences and fences[0].order is MemoryOrder.REL

    def test_unused_exchange_has_destination_before_dce(self):
        program = lower(fig1_exchange())
        rmw = [i for i in program.functions[1].body if i.op is IROp.RMW][0]
        assert rmw.dst is None  # ExprStmt: result discarded at source level

    def test_used_fetch_add_has_destination(self):
        program = lower(fig10_mp_rmw())
        rmw = [i for i in program.functions[1].body if i.op is IROp.RMW][0]
        assert rmw.dst is not None  # bound to r1 (deleted later by DCE)

    def test_if_lowers_to_diamond(self):
        source = """
C t
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0 == 1) { atomic_store_explicit(y, 1, memory_order_relaxed); }
  else { atomic_store_explicit(y, 1, memory_order_relaxed); }
}
exists (y=1)
"""
        program = lower(parse_c_litmus(source))
        kinds = ops(program.functions[0].body)
        assert IROp.CBR in kinds and IROp.LABEL in kinds and IROp.BR in kinds

    def test_observed_locals_recorded(self):
        program = lower(fig7_lb())
        assert program.functions[0].observed_locals == ("r0",)

    def test_while_lowers_to_loop(self):
        source = """
C t
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = 0;
  while (r0 == 0) { r0 = atomic_load_explicit(x, memory_order_relaxed); }
}
exists (P0:r0=1)
"""
        program = lower(parse_c_litmus(source))
        body = program.functions[0].body
        branches = [i for i in body if i.op in (IROp.BR, IROp.CBR)]
        assert len(branches) == 2  # back edge + exit


class TestScaffoldingPasses:
    def test_const_fold(self):
        body = [
            IRInstr(op=IROp.CONST, dst="a", a=2),
            IRInstr(op=IROp.BIN, dst="b", a="a", b=3, bin_op="+"),
            IRInstr(op=IROp.RET),
        ]
        folded = const_fold(body)
        assert folded[1].op is IROp.CONST and folded[1].a == 5

    def test_const_fold_stops_at_labels(self):
        body = [
            IRInstr(op=IROp.CONST, dst="a", a=2),
            IRInstr(op=IROp.LABEL, label="L"),
            IRInstr(op=IROp.BIN, dst="b", a="a", b=3, bin_op="+"),
        ]
        folded = const_fold(body)
        assert folded[2].op is IROp.BIN  # knowledge dropped at the join

    def test_copy_prop(self):
        body = [
            IRInstr(op=IROp.LOAD, dst="%t0", loc="x", order=MemoryOrder.RLX),
            IRInstr(op=IROp.BIN, dst="r0", a="%t0", b=0, bin_op="+"),
            IRInstr(op=IROp.STORE, loc="y", a="r0", order=MemoryOrder.RLX),
        ]
        propagated = copy_prop(body)
        assert propagated[2].a == "%t0"

    def test_branch_fold_constant(self):
        body = [
            IRInstr(op=IROp.CBR, a=1, b=0, cond="eq", label="L"),
            IRInstr(op=IROp.STORE, loc="y", a=1, order=MemoryOrder.RLX),
            IRInstr(op=IROp.LABEL, label="L"),
            IRInstr(op=IROp.RET),
        ]
        folded = branch_fold(body)
        # condition 1==0 is false: branch disappears, store stays
        assert folded[0].op is IROp.STORE

    def test_branch_fold_removes_unreachable(self):
        body = [
            IRInstr(op=IROp.BR, label="L"),
            IRInstr(op=IROp.STORE, loc="y", a=1, order=MemoryOrder.RLX),
            IRInstr(op=IROp.LABEL, label="L"),
            IRInstr(op=IROp.RET),
        ]
        folded = branch_fold(body)
        assert not any(i.op is IROp.STORE for i in folded)


class TestDeadLocalElim:
    def test_unused_plain_load_deleted(self):
        """The Fig. 9 deletion."""
        program = lower(fig9_lb_plain())
        body = dead_local_elim()(list(program.functions[0].body))
        assert not any(i.op is IROp.LOAD for i in body)

    def test_unused_atomic_load_kept(self):
        source = """
C t
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (x=0)
"""
        program = lower(parse_c_litmus(source))
        body = dead_local_elim()(list(program.functions[0].body))
        assert any(i.op is IROp.LOAD for i in body)

    def test_unused_rmw_result_dropped_not_deleted(self):
        """The Fig. 10 precondition: the RMW stays, its dst goes."""
        program = lower(fig10_mp_rmw())
        body = dead_local_elim()(list(program.functions[1].body))
        rmws = [i for i in body if i.op is IROp.RMW]
        assert len(rmws) == 1 and rmws[0].dst is None

    def test_used_local_survives(self):
        source = """
C t
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, r0, memory_order_relaxed);
}
exists (y=1)
"""
        program = lower(parse_c_litmus(source))
        body = dead_local_elim()(list(program.functions[0].body))
        assert any(i.op is IROp.LOAD and i.dst for i in body)

    def test_transitively_dead_chain_deleted(self):
        body = [
            IRInstr(op=IROp.CONST, dst="a", a=1),
            IRInstr(op=IROp.BIN, dst="b", a="a", b=1, bin_op="+"),
            IRInstr(op=IROp.RET),
        ]
        out = dead_local_elim()(body)
        assert ops(out) == [IROp.RET]


class TestBranchPasses:
    DIAMOND_SOURCE = """
C t
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0 == 1) { atomic_store_explicit(y, 1, memory_order_relaxed); }
  else { atomic_store_explicit(y, 1, memory_order_relaxed); }
}
exists (y=1)
"""

    def diamond_body(self):
        return list(lower(parse_c_litmus(self.DIAMOND_SOURCE)).functions[0].body)

    def test_merge_identical_branches_drops_ctrl(self):
        merged = merge_identical_branches(self.diamond_body())
        assert not any(i.op is IROp.CBR for i in merged)
        assert sum(1 for i in merged if i.op is IROp.STORE) == 1

    def test_merge_keeps_different_stores(self):
        body = self.diamond_body()
        # make the arms differ: nothing merges
        stores = [idx for idx, i in enumerate(body) if i.op is IROp.STORE]
        from dataclasses import replace
        body[stores[1]] = replace(body[stores[1]], a=2)
        merged = merge_identical_branches(body)
        assert any(i.op is IROp.CBR for i in merged)

    def test_if_convert_creates_data_dependency(self):
        converted = if_convert_select(self.diamond_body())
        assert not any(i.op is IROp.CBR for i in converted)
        store = [i for i in converted if i.op is IROp.STORE][0]
        assert isinstance(store.a, str)  # value now computed from the cond


class TestPipelines:
    def test_o0_runs_nothing(self):
        profile = make_profile("llvm", "-O0", "aarch64")
        fn = lower(fig7_lb()).functions[0]
        assert pipeline_for(profile, fn) == []

    def test_og_folds_only(self):
        profile = make_profile("gcc", "-Og", "aarch64")
        fn = lower(fig7_lb()).functions[0]
        names = [p.__name__ for p in pipeline_for(profile, fn)]
        assert "run" not in names  # no dead_local_elim closure

    def test_gcc_armv7_o1_has_merge_pass(self):
        profile = make_profile("gcc", "-O1", "armv7")
        fn = lower(fig7_lb()).functions[0]
        passes = pipeline_for(profile, fn)
        assert merge_identical_branches in passes

    def test_llvm_o1_has_no_merge_pass(self):
        profile = make_profile("llvm", "-O1", "armv7")
        fn = lower(fig7_lb()).functions[0]
        assert merge_identical_branches not in pipeline_for(profile, fn)

    def test_o2_if_converts(self):
        profile = make_profile("llvm", "-O2", "aarch64")
        fn = lower(fig7_lb()).functions[0]
        assert if_convert_select in pipeline_for(profile, fn)

    def test_optimise_is_pure(self):
        fn = lower(fig7_lb()).functions[0]
        before = list(fn.body)
        optimise(fn, make_profile("llvm", "-O3", "aarch64"))
        assert fn.body == before
