"""Documentation snippets are tests: execute every fenced ``python``
block of README.md, docs/cookbook.md and docs/analysis.md (the tier-1
face of the ``make docs-check`` CI job, sharing scripts/check_docs.py)."""

import importlib.util
import os

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_spec = importlib.util.spec_from_file_location(
    "check_docs", os.path.join(ROOT, "scripts", "check_docs.py")
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


@pytest.mark.parametrize(
    "name",
    [
        "README.md",
        os.path.join("docs", "cookbook.md"),
        os.path.join("docs", "analysis.md"),
    ],
)
def test_docs_python_blocks_execute(name, capsys):
    path = os.path.join(ROOT, name)
    ran = check_docs.run_file(path)
    assert ran > 0, f"{name} has no executable python blocks"


def test_extractor_handles_skip_and_languages():
    text = (
        "# t\n```python\nx = 1\n```\n"
        "```python skip\nraise RuntimeError\n```\n"
        "```sh\nexit 1\n```\n"
    )
    blocks = check_docs.extract_blocks(text)
    assert [info for _, info, _ in blocks] == ["python", "python skip", "sh"]


def test_extractor_rejects_unterminated_fence():
    with pytest.raises(SystemExit):
        check_docs.extract_blocks("```python\nx = 1\n")
