"""Focused tests for the s2l rewrites and remaining front-end corners."""

import pytest

from repro.asm import AsmThread, get_isa
from repro.compiler import make_profile
from repro.compiler.objfile import ObjectFile, Symbol
from repro.core.litmus import Condition, TrueProp
from repro.lang.parser import parse_c_litmus
from repro.tools.s2l import S2LStats, drop_dead_movaddr, fold_got_loads, forward_stack_traffic

A64 = get_isa("aarch64")


def parse(lines):
    return [A64.parse_line(l) for l in lines]


def fake_obj(got=None):
    return ObjectFile(
        name="t", arch="aarch64", profile_name="p", text={},
        symbols=[Symbol("x", ".data", 0x11000, 4),
                 Symbol("got_x", ".got", 0x13000, 8)],
        relocations=[], got_entries=got or {"got_x": "x"},
        debug=None, init={}, widths={},
    )


class TestGotFolding:
    def test_basic_fold(self):
        stats = S2LStats()
        out = fold_got_loads(
            parse(["adrp x8, got_x", "ldr x8, [x8]", "ldr w12, [x8]"]),
            fake_obj(), stats,
        )
        assert stats.removed_got_loads == 1
        assert out[0].symbol == "x" and len(out) == 2

    def test_no_fold_on_non_got_symbol(self):
        stats = S2LStats()
        out = fold_got_loads(
            parse(["adrp x8, x", "ldr w12, [x8]"]), fake_obj(), stats
        )
        assert stats.removed_got_loads == 0 and len(out) == 2

    def test_no_fold_when_load_targets_other_register(self):
        stats = S2LStats()
        instrs = parse(["adrp x8, got_x", "ldr x9, [x8]"])
        out = fold_got_loads(instrs, fake_obj(), stats)
        assert stats.removed_got_loads == 0 and len(out) == 2

    def test_no_fold_with_offset(self):
        stats = S2LStats()
        instrs = parse(["adrp x8, got_x", "ldr x8, [x8, #8]"])
        out = fold_got_loads(instrs, fake_obj(), stats)
        assert stats.removed_got_loads == 0


class TestSpillForwarding:
    def test_store_load_forwarded_to_move(self):
        stats = S2LStats()
        out = forward_stack_traffic(
            parse(["str w12, [sp]", "ldr w13, [sp]"]), stats
        )
        # the reload becomes a register move; the dead spill disappears
        texts = [i.text or i.op.value for i in out]
        assert stats.removed_stack_accesses == 2
        assert len(out) == 1 and out[0].op.value == "mov"

    def test_same_register_reload_elided(self):
        stats = S2LStats()
        out = forward_stack_traffic(
            parse(["str w12, [sp]", "ldr w12, [sp]"]), stats
        )
        assert len(out) == 0  # mov w12,w12 elided, dead store removed

    def test_forwarding_invalidated_by_redefinition(self):
        stats = S2LStats()
        out = forward_stack_traffic(
            parse(["str w12, [sp]", "mov w12, #9", "ldr w13, [sp]"]), stats
        )
        # w12 redefined: the reload cannot be forwarded, spill must stay
        ops = [i.op.value for i in out]
        assert "load" in ops and "store" in ops

    def test_forwarding_stops_at_labels(self):
        stats = S2LStats()
        out = forward_stack_traffic(
            parse(["str w12, [sp]", ".L0:", "ldr w13, [sp]"]), stats
        )
        ops = [i.op.value for i in out]
        assert "load" in ops and "store" in ops

    def test_distinct_slots_tracked_independently(self):
        stats = S2LStats()
        out = forward_stack_traffic(
            parse(["str w12, [sp]", "str w13, [sp, #8]",
                   "ldr w14, [sp]", "ldr w15, [sp, #8]"]),
            stats,
        )
        assert all(i.op.value == "mov" for i in out)

    def test_non_sp_traffic_untouched(self):
        stats = S2LStats()
        instrs = parse(["str w12, [x8]", "ldr w13, [x8]"])
        out = forward_stack_traffic(instrs, stats)
        assert out == instrs


class TestDeadMovaddr:
    def test_unused_materialisation_dropped(self):
        stats = S2LStats()
        out = drop_dead_movaddr(parse(["adrp x8, x", "ret"]), stats)
        assert stats.removed_dead_movaddr == 1
        assert out[0].op.value == "ret"

    def test_used_materialisation_kept(self):
        stats = S2LStats()
        out = drop_dead_movaddr(parse(["adrp x8, x", "ldr w12, [x8]"]), stats)
        assert stats.removed_dead_movaddr == 0 and len(out) == 2

    def test_redefined_before_use_dropped(self):
        stats = S2LStats()
        out = drop_dead_movaddr(
            parse(["adrp x8, x", "adrp x8, y", "ldr w12, [x8]"]), stats
        )
        assert stats.removed_dead_movaddr == 1


class TestConditionCorners:
    def test_negated_exists(self):
        source = """
C t
{ *x = 0; }
void P0(atomic_int* x) { atomic_store_explicit(x, 1, memory_order_relaxed); }
~exists (x=0)
"""
        litmus = parse_c_litmus(source)
        assert litmus.condition.quantifier == "forall"

    def test_forall_condition(self):
        source = """
C t
{ *x = 0; }
void P0(atomic_int* x) { atomic_store_explicit(x, 1, memory_order_relaxed); }
forall (x=1)
"""
        litmus = parse_c_litmus(source)
        from repro.herd import simulate_c

        result = simulate_c(litmus, "rc11")
        assert result.condition_holds(litmus.condition)

    def test_disjunction_in_condition(self):
        source = """
C t
{ *x = 0; }
void P0(atomic_int* x) { atomic_store_explicit(x, 1, memory_order_relaxed); }
exists (x=0 \\/ x=1)
"""
        litmus = parse_c_litmus(source)
        from repro.herd import simulate_c

        assert simulate_c(litmus, "rc11").condition_holds(litmus.condition)


class TestHardwareCorners:
    def test_sc_reference_chip_never_weak(self):
        from repro.hw import run_on_hardware
        from repro.papertests import fig7_lb
        from repro.tools import assembly_to_litmus, compile_and_disassemble, prepare

        prepared = prepare(fig7_lb())
        c2s = compile_and_disassemble(
            prepared, make_profile("llvm", "-O3", "aarch64")
        )
        compiled = assembly_to_litmus(c2s.obj, prepared.condition,
                                      listing=c2s.listing)
        result = run_on_hardware(compiled, "sc-reference", runs=300, seed=0,
                                 stress=True)
        from repro.herd import simulate_asm

        sc = simulate_asm(compiled, model="sc").outcomes
        assert result.observed <= sc
