"""Tests for the Cat DSL: lexer, parser, interpreter, registry, stdlib."""

import pytest

from repro.cat.interp import Model
from repro.cat.parser import parse
from repro.cat.registry import arch_model, get_model, get_source, list_models
from repro.cat.stdlib import KNOWN_TAG_SETS, build_env
from repro.core.errors import ModelError
from repro.core.events import Event, EventKind, INIT_TID, MemoryOrder
from repro.core.execution import Execution
from repro.core.relations import Relation


def simple_execution():
    events = [
        Event(0, INIT_TID, EventKind.WRITE, "x", 0, tags=frozenset({"INIT"})),
        Event(1, 0, EventKind.WRITE, "x", 1, MemoryOrder.RLX),
        Event(2, 1, EventKind.READ, "x", 1, MemoryOrder.ACQ),
    ]
    return Execution(
        events,
        po=Relation.empty(),
        rf=Relation([(1, 2)]),
        co=Relation([(0, 1)]),
    )


class TestParser:
    def test_model_name_header(self):
        ast = parse("MyModel\nacyclic po as test")
        assert ast.name == "MyModel"

    def test_let_and_check(self):
        ast = parse("M\nlet r = po | rf\nacyclic r as sanity")
        assert len(ast.statements) == 2

    def test_comments_ignored(self):
        ast = parse("M\n(* a comment *)\nacyclic po as t")
        assert len(ast.statements) == 1

    def test_bad_syntax_raises(self):
        with pytest.raises(Exception):
            parse("M\nlet = po")


class TestEvaluation:
    def evaluate(self, source, execution=None):
        model = Model.from_source(source, name="t")
        return model.evaluate(build_env(execution or simple_execution()))

    def test_acyclic_pass(self):
        result = self.evaluate("M\nacyclic co as coherent")
        assert result.allowed

    def test_acyclic_fail(self):
        events = [
            Event(0, 0, EventKind.WRITE, "x", 1),
            Event(1, 1, EventKind.WRITE, "y", 1),
        ]
        execution = Execution(events, po=Relation([(0, 1), (1, 0)]),
                              rf=Relation.empty(), co=Relation.empty())
        result = self.evaluate("M\nacyclic po as order", execution)
        assert not result.allowed
        assert result.failed_checks() == ("order",)

    def test_irreflexive_check(self):
        assert self.evaluate("M\nirreflexive rf as r").allowed
        assert not self.evaluate("M\nirreflexive rf? as r").allowed

    def test_empty_check(self):
        assert self.evaluate("M\nempty rf & co as distinct").allowed

    def test_negated_check(self):
        assert self.evaluate("M\n~empty rf as has-comms").allowed

    def test_flag_check_allows_but_flags(self):
        result = self.evaluate("M\nflag ~empty rf as some-flag")
        assert result.allowed
        assert "some-flag" in result.flags

    def test_flag_not_raised_when_condition_fails(self):
        result = self.evaluate("M\nflag ~empty (rf & co) as nope")
        assert result.allowed
        assert not result.flags

    def test_set_operations(self):
        # R and W are sets; [R] lifts to identity relation
        assert self.evaluate("M\nempty [R] & [W] as disjoint").allowed

    def test_sequence_and_closure(self):
        assert self.evaluate("M\nacyclic (rf ; co)^+ as chain").allowed

    def test_inverse_operator(self):
        result = self.evaluate("M\nempty rf^-1 & rf as antisym")
        assert result.allowed

    def test_cartesian_product(self):
        result = self.evaluate("M\n~empty (W * R) & rf as wr")
        assert result.allowed

    def test_domain_range_builtins(self):
        assert self.evaluate("M\nempty domain(rf) & R as writes-only").allowed
        assert self.evaluate("M\nempty range(rf) & W as reads-only").allowed

    def test_fencerel_builtin(self):
        events = [
            Event(0, 0, EventKind.WRITE, "x", 1, MemoryOrder.RLX),
            Event(1, 0, EventKind.FENCE, order=MemoryOrder.SC),
            Event(2, 0, EventKind.READ, "y", 0, MemoryOrder.RLX),
            Event(3, INIT_TID, EventKind.WRITE, "y", 0, tags=frozenset({"INIT"})),
        ]
        execution = Execution(events, po=Relation([(0, 1), (1, 2), (0, 2)]),
                              rf=Relation([(3, 2)]), co=Relation.empty())
        result = self.evaluate("M\n~empty fencerel(F) as fenced", execution)
        assert result.allowed

    def test_let_rec_fixpoint(self):
        # hb = (po | rf)^+ via recursion
        source = "M\nlet rec hb = po | rf | (hb ; hb)\nacyclic hb as t"
        assert self.evaluate(source).allowed

    def test_unbound_name_raises(self):
        with pytest.raises(ModelError):
            self.evaluate("M\nacyclic nonsense as t")

    def test_unknown_builtin_raises(self):
        with pytest.raises(ModelError):
            self.evaluate("M\nacyclic frobnicate(po) as t")


class TestRegistry:
    def test_all_shipped_models_compile(self):
        for name in list_models():
            model = get_model(name)
            result = model.evaluate(build_env(simple_execution()))
            assert result.allowed, f"{name} rejects a trivial execution"

    def test_cat_suffix_normalised(self):
        assert get_model("rc11.cat") is get_model("rc11")

    def test_unknown_model_raises(self):
        with pytest.raises(ModelError):
            get_model("tso-deluxe")

    def test_arch_model_mapping(self):
        assert arch_model("aarch64").name == "aarch64"
        assert arch_model("x86_64").name == "x86tso"
        with pytest.raises(ModelError):
            arch_model("vax")

    def test_get_source_returns_text(self):
        assert "rs" in get_source("rc11")

    def test_expected_model_inventory(self):
        names = list_models()
        for expected in ("sc", "rc11", "rc11+lb", "aarch64", "armv7",
                         "armv7_buggy", "x86tso", "riscv", "ppc", "mips",
                         "c11_simp", "c11_partialsc"):
            assert expected in names


class TestStdlib:
    def test_tag_sets_always_defined(self):
        env = build_env(simple_execution())
        for tag in KNOWN_TAG_SETS:
            assert tag in env.bindings

    def test_order_sets(self):
        env = build_env(simple_execution())
        assert env.bindings["ACQ"] == frozenset({2})
        assert env.bindings["RLX"] == frozenset({1, 2})  # all atomics
        assert env.bindings["IW"] == frozenset({0})

    def test_init_relation_precedes_everything(self):
        env = build_env(simple_execution())
        assert (0, 1) in env.bindings["init"]
        assert (0, 2) in env.bindings["init"]
