"""Tests for DOT execution rendering and the extended shape library."""

import pytest

from repro.compiler import make_profile
from repro.herd import execution_to_dot, simulate_c, simulation_to_dot
from repro.papertests import fig1_exchange, fig7_lb
from repro.pipeline import test_compilation as run_test_tv
from repro.tools.diy import build_test, get_shape, shape_names

run_test_tv.__test__ = False  # type: ignore[attr-defined]


class TestDotRendering:
    def result(self):
        return simulate_c(fig7_lb(), "rc11", keep_executions=True)

    def interesting_execution(self):
        """An execution where some read observes a non-init write, so an
        rf edge is visible without drawing init events."""
        for execution, outcome in self.result().executions:
            if outcome.as_dict().get("P0:r0") == 1:
                return execution
        raise AssertionError("no rf-visible execution found")

    def test_single_execution_dot(self):
        dot = execution_to_dot(self.interesting_execution(), name="lb")
        assert dot.startswith("digraph lb {") and dot.endswith("}")
        assert 'label="po"' in dot and 'label="rf"' in dot

    def test_node_labels_are_herd_style(self):
        execution, _ = self.result().executions[0]
        dot = execution_to_dot(execution)
        assert "R(Rlx)[x]" in dot or "R(Rlx)[y]" in dot

    def test_init_hidden_by_default(self):
        execution, _ = self.result().executions[0]
        assert "INIT" not in execution_to_dot(execution)
        assert "INIT" in execution_to_dot(execution, include_init=True)

    def test_relation_filter(self):
        dot = execution_to_dot(self.interesting_execution(), relations=("rf",))
        assert 'label="rf"' in dot and 'label="po"' not in dot

    def test_simulation_clusters(self):
        result = simulate_c(fig1_exchange(), "rc11", keep_executions=True)
        dot = simulation_to_dot(result.executions, name="fig2")
        # one cluster per allowed execution, outcome as cluster label
        assert dot.count("subgraph cluster_") == len(result.executions)
        assert "y=2" in dot  # an outcome label

    def test_po_drawn_as_hasse_diagram(self):
        """The stored po is transitive; the drawing keeps only immediate
        successors (6 events per thread pair → 2+2 po edges, never 3+3)."""
        execution = self.interesting_execution()
        dot = execution_to_dot(execution)
        assert dot.count('label="po"') == 4


class TestExtendedShapes:
    def test_new_shapes_registered(self):
        names = shape_names()
        assert "ISA2" in names and "RWC" in names

    def test_isa2_verdicts(self):
        """ISA2 with acq/rel chain is forbidden by RC11; relaxed allowed
        on weak targets."""
        strong = build_test(get_shape("ISA2"), "ar")
        assert not simulate_c(strong, "rc11").condition_holds(strong.condition)
        relaxed = build_test(get_shape("ISA2"), "rlx")
        result = run_test_tv(relaxed, make_profile("llvm", "-O2", "ppc64"))
        # relaxed ISA2 compiled for PPC shows the stale read (MP family)
        assert result.verdict in ("positive", "equal")

    def test_rwc_runs_everywhere(self):
        litmus = build_test(get_shape("RWC"), "rlx")
        result = simulate_c(litmus, "rc11")
        assert result.outcomes
        sc = simulate_c(litmus, "sc")
        assert sc.outcomes <= result.outcomes

    def test_rwc_sc_forbidden(self):
        litmus = build_test(get_shape("RWC"), "sc")
        assert not simulate_c(litmus, "rc11").condition_holds(litmus.condition)
