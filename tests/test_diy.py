"""Tests for the diy test generator."""

import pytest

from repro.core.events import MemoryOrder
from repro.core.litmus import LocEq, RegEq
from repro.herd import simulate_c
from repro.tools.diy import (
    DiyConfig,
    build_test,
    generate,
    get_shape,
    lb_chain,
    paper_config,
    sb_ring,
    shape_names,
    small_config,
)


class TestShapes:
    def test_inventory(self):
        names = shape_names()
        for expected in ("MP", "LB", "SB", "S", "R", "2+2W", "WRC", "IRIW",
                         "LB3", "LB4", "SB3"):
            assert expected in names

    def test_lb_chain_sizes(self):
        assert len(lb_chain(2).threads) == 2
        assert len(lb_chain(5).threads) == 5
        assert lb_chain(3).name == "LB3"

    def test_sb_ring(self):
        shape = sb_ring(3)
        assert all(t[0].kind == "W" and t[1].kind == "R" for t in shape.threads)

    def test_num_vars(self):
        assert get_shape("MP").num_vars == 2
        assert get_shape("IRIW").num_vars == 2
        assert get_shape("LB3").num_vars == 3


class TestBuildTest:
    def test_lb_structure(self):
        litmus = build_test(get_shape("LB"), "rlx")
        assert len(litmus.threads) == 2
        assert litmus.init == {"x": 0, "y": 0}
        assert str(litmus.condition) == "exists (P0:r0=1 /\\ P1:r0=1)"

    def test_orders_applied(self):
        litmus = build_test(get_shape("MP"), "sc")
        store = litmus.threads[0].body[0]
        assert store.order is MemoryOrder.SC

    def test_ar_orders_split(self):
        litmus = build_test(get_shape("MP"), "ar")
        assert litmus.threads[0].body[0].order is MemoryOrder.REL  # store
        assert litmus.threads[1].body[0].expr.order is MemoryOrder.ACQ  # load

    def test_fence_inserted(self):
        litmus = build_test(get_shape("LB"), "rlx", fence=MemoryOrder.SC)
        from repro.lang.ast import Fence

        assert any(isinstance(s, Fence) for s in litmus.threads[0].body)

    def test_ctrl2_builds_diamond(self):
        from repro.lang.ast import If

        litmus = build_test(get_shape("LB"), "rlx", dep="ctrl2")
        branch = [s for s in litmus.threads[0].body if isinstance(s, If)][0]
        assert branch.else_body

    def test_data_dep_writes_read_value(self):
        from repro.lang.ast import AtomicStore, Var

        litmus = build_test(get_shape("LB"), "rlx", dep="data")
        store = [s for s in litmus.threads[0].body if isinstance(s, AtomicStore)][0]
        assert isinstance(store.expr, Var)

    def test_plain_variant(self):
        litmus = build_test(get_shape("LB"), "rlx", atomic=False)
        assert not litmus.threads[0].atomic_params

    def test_faa_variant_bumps_condition(self):
        litmus = build_test(get_shape("MP"), "rlx", variant="faa-first-unused")
        # P1's first read became an unused fetch_add(y, 1): condition now
        # constrains y's final value instead of the deleted register
        assert "y=2" in str(litmus.condition)

    def test_rmw_read_variant(self):
        from repro.lang.ast import AtomicRMW

        litmus = build_test(get_shape("LB"), "rlx", variant="rmw-read")
        decl = litmus.threads[0].body[0]
        assert isinstance(decl.expr, AtomicRMW) and decl.expr.kind == "add"


class TestSemanticsOfGenerated:
    """Generated tests must carry the intended model verdicts."""

    def test_lb_family_verdicts(self):
        litmus = build_test(get_shape("LB"), "rlx")
        rc11 = simulate_c(litmus, "rc11")
        lb = simulate_c(litmus, "rc11+lb")
        assert not rc11.condition_holds(litmus.condition)
        assert lb.condition_holds(litmus.condition)

    def test_sb_allowed_relaxed_forbidden_sc(self):
        relaxed = build_test(get_shape("SB"), "rlx")
        assert simulate_c(relaxed, "rc11").condition_holds(relaxed.condition)
        sc = build_test(get_shape("SB"), "sc")
        assert not simulate_c(sc, "rc11").condition_holds(sc.condition)

    def test_mp_ar_forbidden(self):
        litmus = build_test(get_shape("MP"), "ar")
        assert not simulate_c(litmus, "rc11").condition_holds(litmus.condition)

    def test_wrc_shape_runs(self):
        litmus = build_test(get_shape("WRC"), "rlx")
        result = simulate_c(litmus, "rc11")
        assert result.outcomes

    def test_2plus2w_condition(self):
        litmus = build_test(get_shape("2+2W"), "rlx")
        result = simulate_c(litmus, "rc11")
        # x=1 ∧ y=1 requires both second writes to be co-early: RC11's
        # coherence still permits it only via po reordering — forbidden
        # under the no-thin-air-free... just assert simulation works and
        # the condition matches the shape spec
        assert str(litmus.condition) == "exists (x=1 /\\ y=1)"

    def test_faa_outcome_consistency(self):
        litmus = build_test(get_shape("MP"), "rlx", variant="faa-first-unused")
        result = simulate_c(litmus, "rc11")
        finals = {o.as_dict()["y"] for o in result.outcomes}
        # coherence-order choice: faa(0)+1=1 then store 1 → final 1, or
        # store 1 then faa(1)+1=2 → final 2; the interesting case is 2
        assert finals == {1, 2}


class TestGenerate:
    def test_deterministic(self):
        config = small_config()
        first = [t.name for t in generate(config)]
        second = [t.name for t in generate(config)]
        assert first == second

    def test_names_follow_diy_convention(self):
        tests = generate(small_config())
        assert all(t.name[-3:].isdigit() for t in tests)

    def test_limit_respected(self):
        config = DiyConfig(limit=5)
        assert len(generate(config)) == 5

    def test_dep_only_on_rw_shapes(self):
        config = DiyConfig(shapes=("MP",), orders=("rlx",), fences=(None,),
                           deps=("po", "ctrl"), variants=("load-store",))
        tests = generate(config)
        # MP's P1 is R;R — no read→write thread, so ctrl variants are
        # generated only for the po case... MP has no RW thread at all
        assert len(tests) == 1

    def test_paper_config_scale(self):
        tests = generate(paper_config())
        assert len(tests) > 200  # the scaled-down campaign input

    def test_all_generated_tests_simulate(self):
        for litmus in generate(small_config()):
            result = simulate_c(litmus, "rc11")
            assert result.outcomes, f"{litmus.name} produced no outcomes"
