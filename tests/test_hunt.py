"""The hunt subsystem: mutation operators, the feedback scheduler, the
delta-debugging reducer, and mode="hunt" campaigns end to end."""

import json

import pytest

from repro.api import (
    CampaignPlan,
    CellFinished,
    HuntProgress,
    PlanError,
    Session,
    TestReduced,
    fold_events,
)
from repro.hunt import (
    HuntScheduler,
    ReductionError,
    example_seeds,
    fig1_masked,
    lb_masked,
    reduce_test,
    test_size,
)
from repro.lang.ast import Fence
from repro.lang.parser import parse_c_litmus
from repro.papertests import fig1_exchange, fig7_lb
from repro.pipeline.store import CampaignStore
from repro.tools.mutate import (
    DEFAULT_OPERATORS,
    MUTATIONS,
    MutationError,
    fuzz_variants,
    iter_mutants,
)

AXES = dict(arches=("aarch64",), opts=("-O2",))
PROFILE = ("llvm", "-O2", "aarch64")


# --------------------------------------------------------------------------- #
# mutation operators
# --------------------------------------------------------------------------- #
class TestMutationRegistry:
    def test_default_operators_registered(self):
        for name in DEFAULT_OPERATORS:
            assert name in MUTATIONS
        assert "drop-fence" in MUTATIONS

    def test_unknown_operator_did_you_mean(self):
        with pytest.raises(MutationError, match="weaken-fence"):
            list(iter_mutants(fig1_masked(), operators=("weaken-fenc",)))

    def test_mutant_names_are_content_derived(self):
        """The historical ``+m{len}`` counter suffix collided across
        repeated calls on renamed tests; digest-derived names cannot."""
        from dataclasses import replace

        seed = fig1_masked()
        renamed = replace(seed, name="other_name")
        by_digest = {m.digest: m.litmus.name for m in iter_mutants(seed)}
        again = {m.digest: m.litmus.name for m in iter_mutants(seed)}
        assert by_digest == again  # repeated calls: same names
        other = {m.digest: m.litmus.name for m in iter_mutants(renamed)}
        # same contents, different seed name: digests line up, names
        # differ in the seed base — never collide with a counter
        assert set(other) == set(by_digest)
        names = list(by_digest.values()) + list(other.values())
        assert len(set(names)) == len(names)

    def test_mutants_do_not_grow_suffix_chains(self):
        seed = fig1_masked()
        first = next(iter(iter_mutants(seed))).litmus
        second = next(iter(iter_mutants(first))).litmus
        assert second.name.count("+") == 1  # flat: base+op.digest

    def test_fig1_masked_mutates_into_fig1_exchange(self):
        """Weakening the masking seq_cst fence to acquire reproduces the
        paper's Fig. 1 test exactly — by content digest."""
        digests = {m.digest for m in iter_mutants(fig1_masked())}
        assert fig1_exchange().digest() in digests

    def test_drop_fence_removes_a_statement(self):
        seed = fig1_masked()
        dropped = [
            m.litmus
            for m in iter_mutants(seed, operators=("drop-fence",))
        ]
        assert dropped
        for mutant in dropped:
            assert test_size(mutant) == test_size(seed) - 1
            fences = sum(
                isinstance(s, Fence) for t in mutant.threads for s in t.body
            )
            assert fences == 1  # the seed has two

    def test_fuzz_variants_respects_limit_and_registry(self):
        session = Session()
        calls = []

        def null_op(litmus):
            calls.append(litmus.name)
            return iter(())

        session.register_mutation("null-op", null_op)
        assert fuzz_variants(
            fig1_masked(), operators=("null-op",),
            registry=session.mutations,
        ) == []
        assert calls == ["fig1_masked"]
        assert len(fuzz_variants(fig1_masked(), limit=3)) == 3


# --------------------------------------------------------------------------- #
# the scheduler
# --------------------------------------------------------------------------- #
class TestHuntScheduler:
    def test_seeds_dedup_by_digest(self):
        sched = HuntScheduler([fig1_masked(), fig1_masked(), lb_masked()])
        assert len(sched.initial()) == 2
        assert sched.duplicates_skipped == 1

    def test_rounds_dedup_and_track_lineage(self):
        sched = HuntScheduler(example_seeds())
        seeds = sched.initial()
        round1 = sched.next_round([])
        assert round1
        digests = {t.digest() for t in seeds} | {t.digest() for t in round1}
        assert len(digests) == sched.unique_tests
        for mutant in round1:
            lineage = sched.lineage(mutant.digest())
            assert lineage.depth == 1
            assert lineage.parent in {t.digest() for t in seeds}
            assert lineage.operator in DEFAULT_OPERATORS

    def test_positives_are_mutated_first(self):
        sched = HuntScheduler(example_seeds(), round_limit=3)
        seeds = sched.initial()
        # claim the *second* seed went positive: its mutants must lead
        positive = seeds[1].digest()
        round1 = sched.next_round([positive])
        assert len(round1) == 3
        for mutant in round1:
            assert sched.lineage(mutant.digest()).parent == positive

    def test_round_limit_resumes_parent_next_round(self):
        capped = HuntScheduler(example_seeds(), round_limit=2)
        first = capped.next_round([])
        second = capped.next_round([])
        free = HuntScheduler(example_seeds(), round_limit=1000)
        everything = {t.digest() for t in free.next_round([])}
        # nothing is lost to the cap: later rounds pick up the remainder
        assert {t.digest() for t in first} < everything
        assert {t.digest() for t in second} <= everything

    def test_resumed_parents_do_not_inflate_duplicate_count(self):
        """Re-enumerating a round_limit-interrupted parent must not
        re-count its already-admitted prefix as duplicates."""
        capped = HuntScheduler(example_seeds(), round_limit=2)
        while capped.next_round([]):
            pass
        free = HuntScheduler(example_seeds(), round_limit=1000)
        while free.next_round([]):
            pass
        assert capped.unique_tests == free.unique_tests
        assert capped.duplicates_skipped == free.duplicates_skipped

    def test_exhaustion_returns_empty(self):
        sched = HuntScheduler([lb_masked()], round_limit=10_000)
        rounds = 0
        while sched.next_round([]):
            rounds += 1
            assert rounds < 50  # the weakening lattice is finite
        assert sched.next_round([]) == []


# --------------------------------------------------------------------------- #
# the reducer
# --------------------------------------------------------------------------- #
class TestReducer:
    def test_reduces_fig1_no_larger_than_handwritten(self):
        session = Session()
        result = session.reduce(fig1_exchange(), PROFILE)
        assert test_size(result.reduced) <= test_size(fig1_exchange())
        assert session.test(result.reduced, PROFILE).verdict == "positive"
        # lineage points back at the original by content digest
        assert result.lineage()["reduced_from"] == fig1_exchange().digest()

    def test_terminates_on_already_minimal(self):
        """Reduction is idempotent: re-reducing a reduced test returns
        it unchanged, with zero steps, after one bounded no-progress
        pass — the reducer never loops on a test it cannot shrink."""
        session = Session()
        litmus = fig7_lb()
        assert session.test(litmus, PROFILE).verdict == "positive"
        minimal = session.reduce(litmus, PROFILE).reduced
        result = session.reduce(minimal, PROFILE)
        assert not result.changed
        assert result.steps == ()
        assert result.reduced.digest() == minimal.digest()
        assert result.reduced.name == minimal.name  # no cosmetic rename
        # 1 input check + one rejected candidate each: strictly bounded
        size = test_size(minimal)
        assert result.checks <= 1 + 3 * size + len(minimal.threads) + 8

    def test_rejects_non_positive_input(self):
        session = Session()
        with pytest.raises(ReductionError):
            session.reduce(fig1_masked(), PROFILE)

    def test_max_checks_budget(self):
        calls = []

        def check(candidate):
            calls.append(candidate)
            return True  # everything "reproduces": reduction runs long

        result = reduce_test(fig1_exchange(), check, max_checks=5)
        assert result.checks <= 5
        # partial progress is kept, not discarded
        assert test_size(result.reduced) <= test_size(fig1_exchange())

    def test_every_step_reverified(self):
        """The reducer never keeps a shrink its oracle rejected."""
        session = Session()

        def check(candidate):
            return session.test(candidate, PROFILE).verdict == "positive"

        result = reduce_test(fig1_exchange(), check)
        for step in result.steps:
            assert step.digest  # each step carries its content identity
        assert check(result.reduced)


# --------------------------------------------------------------------------- #
# hunt campaigns end to end
# --------------------------------------------------------------------------- #
def _run_hunt(session=None, **plan_fields):
    plan = CampaignPlan(
        mode="hunt", tests=tuple(example_seeds()), **AXES, **plan_fields
    )
    session = session if session is not None else Session()
    stream = session.campaign(plan)
    events = list(stream)
    return events, fold_events(events)


class TestHuntCampaign:
    def test_finds_fig1_from_non_exposing_seed(self):
        """The acceptance scenario: the seeds themselves are clean, and
        mutation recovers the Fig. 1 exchange bug."""
        events, report = _run_hunt()
        cells = [e for e in events if isinstance(e, CellFinished)]
        seed_cells = [e for e in cells if e.record.get("depth") == 0]
        assert seed_cells and all(
            e.verdict != "positive" for e in seed_cells
        )
        positives = {e.digest for e in cells if e.verdict == "positive"}
        assert fig1_exchange().digest() in positives

    def test_reduction_events_and_size_bound(self):
        events, _ = _run_hunt()
        reduced = [e for e in events if isinstance(e, TestReduced)]
        fig1 = [
            e for e in reduced if e.digest == fig1_exchange().digest()
        ]
        assert fig1, "the Fig. 1 positive was not reduced"
        assert fig1[0].reduced_statements <= test_size(fig1_exchange())
        for event in reduced:
            assert event.record["mode"] == "hunt"
            assert event.record["reduced_from"] == event.digest
            assert event.record["verdict"] == "positive"
            assert "source" in event.record  # self-contained reproducer

    def test_round2_feedback_finds_lb(self):
        """lb_masked needs two weakenings — only a multi-round,
        feedback-driven hunt reaches it."""
        events_1, _ = _run_hunt(mutation_rounds=1)
        events_2, _ = _run_hunt(mutation_rounds=2)

        def positive_names(events):
            return {
                e.test for e in events
                if isinstance(e, CellFinished) and e.verdict == "positive"
            }

        assert not any(
            n.startswith("lb_masked") for n in positive_names(events_1)
        )
        assert any(
            n.startswith("lb_masked") for n in positive_names(events_2)
        )

    def test_hunt_progress_partitions_the_stream(self):
        events, _ = _run_hunt()
        rounds = [e for e in events if isinstance(e, HuntProgress)]
        assert [e.round_index for e in rounds] == list(range(len(rounds)))
        cells = [e for e in events if isinstance(e, CellFinished)]
        assert sum(e.cells for e in rounds) == len(cells)
        assert all(e.mode == "hunt" for e in cells)
        # indexes are deterministic schedule positions
        assert sorted(e.index for e in cells) == list(range(len(cells)))

    def test_backend_parity(self):
        """Same hunt, same folded report — and the same reductions, down
        to which cell's profile each positive is reduced under — on all
        three backends (modulo the parallelism metadata the report
        records).  Completion order must never pick the representative."""
        runs = [_run_hunt(), _run_hunt(workers=4), _run_hunt(processes=2)]
        dumps = []
        reduction_keys = []
        for events, report in runs:
            data = report.to_jsonable(include_timing=False)
            data.pop("workers")
            data.pop("processes")
            dumps.append(json.dumps(data, sort_keys=True))
            reduction_keys.append([
                (e.digest, e.reduced_digest, e.record["profile"])
                for e in events if isinstance(e, TestReduced)
            ])
        assert dumps[0] == dumps[1] == dumps[2]
        assert reduction_keys[0] == reduction_keys[1] == reduction_keys[2]

    def test_store_records_lineage_and_resume(self, tmp_path):
        store_path = tmp_path / "hunt.jsonl"
        session = Session(store=CampaignStore(store_path))
        events, report = _run_hunt(session=session)
        store = CampaignStore(store_path)
        hunt_records = [
            r for r in store.records() if r.get("mode") == "hunt"
        ]
        assert hunt_records
        mutants = [r for r in hunt_records if r.get("operator")]
        assert mutants and all("seed" in r for r in mutants)
        reduced = [r for r in hunt_records if "reduced_from" in r]
        assert reduced
        for record in reduced:
            assert record["reduction_steps"] is not None
            assert record["source"].startswith("C ")
        # a warm re-run replays every cell from the store
        warm_session = Session(store=CampaignStore(store_path))
        warm_events, warm_report = _run_hunt(
            session=warm_session, resume=True
        )
        warm_cells = [
            e for e in warm_events if isinstance(e, CellFinished)
        ]
        assert warm_cells and all(e.from_store for e in warm_cells)
        assert warm_report.to_jsonable(include_timing=False)["cells"] == \
            report.to_jsonable(include_timing=False)["cells"]

    def test_session_hunt_sugar_and_validation(self):
        session = Session()
        stream = session.hunt([fig1_masked()], **AXES, mutation_rounds=1)
        assert any(
            isinstance(e, HuntProgress) for e in stream
        )
        with pytest.raises(PlanError):
            session.hunt(CampaignPlan(**AXES))  # mode is "tv"
        with pytest.raises(PlanError):
            session.hunt([], **AXES)
        with pytest.raises(PlanError):
            _run_hunt(mutations=("no-such-op",))

    def test_plan_validation(self):
        with pytest.raises(PlanError):
            CampaignPlan(mutations=("weaken-fence",))  # tv mode
        with pytest.raises(PlanError):
            CampaignPlan(mode="hunt", shard=(0, 2))
        with pytest.raises(PlanError):
            CampaignPlan(mode="hunt", mutation_limit=0)
        plan = CampaignPlan(mode="hunt", mutations=["weaken-fence"])
        assert plan.mutations == ("weaken-fence",)
        assert plan.describe()["mutations"] == ["weaken-fence"]

    def test_stored_reproducers_round_trip_through_parser(self):
        """Mutant/reduction names carry ``+``/``.`` suffixes and weakened
        conditions print bare (``exists P1:r0=0``); the parser accepts
        both, so a stored reproducer re-parses digest-identically."""
        events, _ = _run_hunt()
        reduced = [e for e in events if isinstance(e, TestReduced)]
        assert reduced
        for event in reduced:
            litmus = parse_c_litmus(str(event.record["source"]))
            assert litmus.name == event.reduced_name
            assert litmus.digest() == event.reduced_digest
        # ...without regressing one-line headers, where the init block
        # opens on the name's line
        one_liner = parse_c_litmus(
            "C mp { *x = 0; }\n"
            "void P0(atomic_int* x) "
            "{ atomic_store_explicit(x, 1, memory_order_relaxed); }\n"
            "exists (x=1)\n"
        )
        assert one_liner.name == "mp"
        assert one_liner.init == {"x": 0}

    def test_no_reduce_skips_reduction(self):
        events, _ = _run_hunt(reduce=False)
        assert not any(isinstance(e, TestReduced) for e in events)

    def test_session_mutation_overlay_drives_hunts(self):
        """A session-registered operator is usable by name — and stays
        invisible to other sessions."""
        session = Session()
        session.register_mutation(
            "nothing", lambda litmus: iter(())
        )
        plan = CampaignPlan(
            mode="hunt", tests=(fig1_masked(),), **AXES,
            mutations=("nothing",), mutation_rounds=1, reduce=False,
        )
        events = list(session.campaign(plan))
        cells = [e for e in events if isinstance(e, CellFinished)]
        assert len(cells) == 2  # the seed cells only: no mutants exist
        with pytest.raises(PlanError):
            list(Session().campaign(plan))
