"""Tests for the campaign runner and the telechat CLI."""

import pytest

from repro.pipeline.campaign import CampaignCell, CampaignReport, run_campaign
from repro.pipeline.cli import build_parser, main
from repro.tools.diy import DiyConfig


@pytest.fixture(scope="module")
def small_report():
    """A tiny but real campaign: LB under rc11 on two contrasting arches."""
    config = DiyConfig(
        shapes=("LB",),
        orders=("rlx",),
        fences=(None,),
        deps=("po", "ctrl2"),
        variants=("load-store",),
    )
    return run_campaign(
        config=config,
        arches=("aarch64", "armv7", "x86_64", "mips64"),
        opts=("-O1", "-O2"),
        compilers=("llvm", "gcc"),
        source_model="rc11",
    )


class TestCampaign:
    def test_counts_shape(self, small_report):
        """Positive differences on Armv8/Armv7, zero on x86/MIPS."""
        assert small_report.total_positive("aarch64") > 0
        assert small_report.total_positive("armv7") > 0
        assert small_report.total_positive("x86_64") == 0
        assert small_report.total_positive("mips64") == 0

    def test_gcc_armv7_o1_extra_positives(self, small_report):
        """The §IV-D quirk: gcc -O1 on Armv7 sees MORE positives than
        clang -O1 (the deleted control dependency)."""
        gcc_o1 = small_report.cell("armv7", "-O1", "gcc").positive
        clang_o1 = small_report.cell("armv7", "-O1", "llvm").positive
        assert gcc_o1 > clang_o1

    def test_gcc_armv7_masked_at_o2(self, small_report):
        gcc_o1 = small_report.cell("armv7", "-O1", "gcc").positive
        gcc_o2 = small_report.cell("armv7", "-O2", "gcc").positive
        assert gcc_o2 < gcc_o1

    def test_negative_differences_on_strong_targets(self):
        """MIPS's SYNC-bracketed atomics forbid even the SB outcome the
        source model allows; x86 loses the LB outcome permitted by
        rc11+lb.  Both show up as negative differences."""
        config = DiyConfig(shapes=("SB", "LB"), orders=("rlx",),
                           fences=(None,), deps=("po",),
                           variants=("load-store",))
        report = run_campaign(
            config=config, arches=("mips64", "x86_64"), opts=("-O2",),
            compilers=("llvm",), source_model="rc11+lb",
        )
        assert report.total_negative("mips64") > 0
        assert report.total_negative("x86_64") > 0
        assert report.total_positive() == 0

    def test_positives_recorded_for_drilldown(self, small_report):
        assert small_report.positives
        test, arch, opt, compiler = small_report.positives[0]
        assert arch in ("aarch64", "armv7")

    def test_table_rendering(self, small_report):
        table = small_report.table()
        assert "Armv8 AArch64" in table
        assert "+ve" in table and "-ve" in table
        assert "clang/gcc" in table

    def test_rc11_lb_kills_positives(self):
        """Claim 4, at campaign scale."""
        config = DiyConfig(shapes=("LB",), orders=("rlx",), fences=(None,),
                           deps=("po",), variants=("load-store",))
        report = run_campaign(
            config=config, arches=("aarch64", "ppc64"), opts=("-O2",),
            compilers=("llvm",), source_model="rc11+lb",
        )
        assert report.total_positive() == 0

    def test_cell_records(self):
        cell = CampaignCell()
        for verdict in ("positive", "negative", "equal", "ub-masked"):
            cell.record(verdict)
        assert cell.total == 4 and cell.positive == 1 and cell.ub_masked == 1

    def test_clang_og_skipped(self, small_report):
        """clang has no -Og (the dashes in Table IV)."""
        assert ("aarch64", "-Og", "llvm") not in small_report.cells


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["examples"])
        assert args.command == "examples"

    def test_examples_smoketest(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "positive" in out and "rc11+lb" in out

    def test_models_listing(self, capsys):
        assert main(["models"]) == 0
        assert "rc11" in capsys.readouterr().out

    def test_shapes_listing(self, capsys):
        assert main(["shapes"]) == 0
        assert "LB" in capsys.readouterr().out

    def test_test_subcommand(self, tmp_path, capsys):
        from repro.papertests import FIG7_SOURCE

        path = tmp_path / "lb.litmus.c"
        path.write_text(FIG7_SOURCE)
        # exit code 1 = bug found (the LB positive difference)
        assert main(["test", str(path), "--arch", "aarch64"]) == 1
        assert main(["test", str(path), "--arch", "aarch64",
                     "--cmem", "rc11+lb"]) == 0

    def test_campaign_subcommand(self, capsys):
        assert main(["campaign", "--small", "--arch", "aarch64",
                     "--opt=-O2"]) == 0
        out = capsys.readouterr().out
        assert "Campaign under source model" in out
