"""Tests for the object-file model, disassembler, and the l2c/c2s/s2l tools."""

import pytest

from repro.compiler import (
    compile_program,
    disassemble,
    link_layout,
    lower,
    make_profile,
    strip_listing,
)
from repro.compiler.objfile import DATA_BASE, GOT_BASE, RODATA_BASE
from repro.core.errors import MappingError
from repro.core.events import MemoryOrder
from repro.core.litmus import LocEq
from repro.lang import parse_c_litmus
from repro.lang.ast import PlainStore
from repro.papertests import fig7_lb, fig10_mp_rmw
from repro.tools import (
    S2LStats,
    assembly_to_litmus,
    augment_locals,
    compile_and_disassemble,
    fuzz_variants,
    mcompare,
    out_global,
    prepare,
)
from repro.tools.mcompare import StateMapping
from repro.herd import simulate_asm, simulate_c


def build_obj(litmus=None, profile=None, augment=True):
    litmus = litmus or fig7_lb()
    profile = profile or make_profile("llvm", "-O2", "aarch64")
    prepared = prepare(litmus, augment=augment)
    return compile_and_disassemble(prepared, profile), prepared


class TestL2c:
    def test_augment_adds_out_globals(self):
        augmented = augment_locals(fig7_lb())
        assert "out_P0_r0" in augmented.init
        assert "out_P1_r0" in augmented.init
        stores = [s for s in augmented.threads[0].body if isinstance(s, PlainStore)]
        assert stores and stores[-1].loc == "out_P0_r0"

    def test_augment_rewrites_condition(self):
        augmented = augment_locals(fig7_lb())
        assert augmented.condition.observables() == frozenset(
            {"out_P0_r0", "out_P1_r0"}
        )

    def test_augment_leaves_original_code(self):
        original = fig7_lb()
        augmented = augment_locals(original)
        assert augmented.threads[0].body[: len(original.threads[0].body)] == \
            original.threads[0].body

    def test_augment_only_observed_locals(self):
        augmented = augment_locals(fig10_mp_rmw())
        # condition observes P1:r0 and y; r1 is not observed
        assert out_global("P1", "r1") not in augmented.init
        assert out_global("P1", "r0") in augmented.init

    def test_out_global_naming(self):
        assert out_global("P2", "r7") == "out_P2_r7"

    def test_prepare_no_augment_is_identity(self):
        litmus = fig7_lb()
        assert prepare(litmus, augment=False) is litmus

    def test_fuzz_variants_weaken_orders(self):
        variants = fuzz_variants(fig10_mp_rmw(), limit=8)
        assert variants
        # names derive from the operator + content digest, so repeated
        # calls (on renamed seeds included) can never collide
        assert all(v.name.startswith("fig10_mp_rmw+") for v in variants)
        assert len({v.name for v in variants}) == len(variants)
        assert len({v.digest() for v in variants}) == len(variants)

    def test_fuzz_respects_limit(self):
        assert len(fuzz_variants(fig10_mp_rmw(), limit=2)) == 2


class TestObjectFile:
    def test_layout_sections(self):
        (c2s, _) = build_obj()
        data_syms = [s for s in c2s.obj.symbols if s.section == ".data"]
        got_syms = [s for s in c2s.obj.symbols if s.section == ".got"]
        assert all(s.address >= DATA_BASE for s in data_syms)
        assert all(s.address >= GOT_BASE for s in got_syms)

    def test_rodata_for_const(self):
        source = """
C t
{ const *c = 5; }
void P0(atomic_int* c) {
  int r0 = atomic_load_explicit(c, memory_order_relaxed);
}
exists (P0:r0=5)
"""
        litmus = parse_c_litmus(source)
        c2s, _ = build_obj(litmus)
        sym = c2s.obj.symbol("c")
        assert sym.section == ".rodata" and sym.address >= RODATA_BASE

    def test_symbol_at_resolves_interior(self):
        c2s, _ = build_obj()
        sym = c2s.obj.symbol("x")
        assert c2s.obj.symbol_at(sym.address) == sym
        assert c2s.obj.symbol_at(0xFFFFFF) is None

    def test_relocations_cover_movaddr_sites(self):
        c2s, _ = build_obj()
        assert c2s.obj.relocations
        assert all(r.kind in ("GOT", "ABS") for r in c2s.obj.relocations)

    def test_got_entries_point_at_targets(self):
        c2s, _ = build_obj()
        assert c2s.obj.got_entries.get("got_x") == "x"

    def test_stack_symbols_at_o0(self):
        c2s, _ = build_obj(profile=make_profile("llvm", "-O0", "aarch64"))
        assert c2s.obj.debug.stack_symbols
        assert any(s.section == ".stack" for s in c2s.obj.symbols)


class TestDisassembler:
    def test_numeric_view_hides_symbols(self):
        c2s, _ = build_obj()
        lines = c2s.listing["P0"]
        text = "\n".join(lines)
        assert "0x13" in text  # GOT addresses shown numerically
        assert "got_x" not in text

    def test_symbolic_view_option(self):
        c2s, _ = build_obj()
        lines = disassemble(c2s.obj, numeric=False)["P0"]
        assert any("got_" in line for line in lines)

    def test_strip_listing_removes_addresses(self):
        c2s, _ = build_obj()
        stripped = strip_listing(c2s.listing["P0"])
        assert all(not line.startswith(" ") or ":" not in line.split()[0]
                   for line in stripped)


class TestS2l:
    def test_address_bridging(self):
        c2s, prepared = build_obj()
        asm = assembly_to_litmus(c2s.obj, prepared.condition, listing=c2s.listing)
        # numeric operands resolved back to symbols
        symbols = {
            i.symbol
            for t in asm.threads
            for i in t.instructions
            if i.symbol
        }
        assert symbols and all(not s.startswith("0x") for s in symbols)

    def test_unresolvable_address_raises(self):
        c2s, prepared = build_obj()
        broken = [line.replace("0x13", "0xff") for line in c2s.listing["P0"]]
        listing = dict(c2s.listing)
        listing["P0"] = broken
        with pytest.raises(MappingError):
            assembly_to_litmus(c2s.obj, prepared.condition, listing=listing)

    def test_got_folding_removes_reads(self):
        c2s, prepared = build_obj()
        stats = S2LStats()
        asm = assembly_to_litmus(
            c2s.obj, prepared.condition, listing=c2s.listing, stats=stats
        )
        assert stats.removed_got_loads > 0
        # the optimised test reads no GOT slot
        assert all(
            tpl.loc is None or not tpl.loc.startswith("got_")
            for t in asm.threads
            for tpl in []
        )

    def test_unoptimised_keeps_got_traffic(self):
        c2s, prepared = build_obj()
        raw = assembly_to_litmus(
            c2s.obj, prepared.condition, listing=c2s.listing, optimise=False
        )
        opt = assembly_to_litmus(
            c2s.obj, prepared.condition, listing=c2s.listing, optimise=True
        )
        def count(asm):
            return sum(len(t.instructions) for t in asm.threads)
        assert count(raw) > count(opt)

    def test_outcomes_preserved_by_optimisation(self):
        """The paper's soundness claim: s2l rewrites touch only locations
        other threads cannot name, so outcomes are identical."""
        for opt_level in ("-O0", "-O2"):
            c2s, prepared = build_obj(
                profile=make_profile("llvm", opt_level, "aarch64")
            )
            raw = assembly_to_litmus(
                c2s.obj, prepared.condition, listing=c2s.listing, optimise=False
            )
            opt = assembly_to_litmus(
                c2s.obj, prepared.condition, listing=c2s.listing, optimise=True
            )
            raw_result = simulate_asm(raw)
            opt_result = simulate_asm(opt)
            mapping = StateMapping(
                observables=frozenset(prepared.init) | prepared.condition.observables()
            )
            raw_set = {mapping.apply(o) for o in raw_result.outcomes}
            opt_set = {mapping.apply(o) for o in opt_result.outcomes}
            assert raw_set == opt_set, f"outcomes drift at {opt_level}"

    def test_spill_forwarding_at_o0(self):
        c2s, prepared = build_obj(profile=make_profile("llvm", "-O0", "aarch64"))
        stats = S2LStats()
        asm = assembly_to_litmus(
            c2s.obj, prepared.condition, listing=c2s.listing, stats=stats
        )
        assert stats.removed_stack_accesses > 0

    def test_stats_removed_lines_per_access(self):
        """Paper §IV-D: 'removes around 4 lines of code per access'."""
        c2s, prepared = build_obj(profile=make_profile("llvm", "-O0", "aarch64"))
        stats = S2LStats()
        assembly_to_litmus(
            c2s.obj, prepared.condition, listing=c2s.listing, stats=stats
        )
        accesses = 6  # 2 threads x (load + store + out-store)
        assert stats.total_removed / accesses >= 2


class TestMcompare:
    def run_pair(self, source_model="rc11"):
        c2s, prepared = build_obj()
        asm = assembly_to_litmus(c2s.obj, prepared.condition, listing=c2s.listing)
        src = simulate_c(prepared, source_model)
        tgt = simulate_asm(asm)
        return mcompare(
            src, tgt,
            shared_locations=list(prepared.init),
            condition_observables=prepared.condition.observables(),
        )

    def test_positive_difference_found(self):
        comparison = self.run_pair("rc11")
        assert comparison.verdict() == "positive"
        assert comparison.is_positive and not comparison.is_equal

    def test_rc11_lb_equal(self):
        comparison = self.run_pair("rc11+lb")
        assert comparison.verdict() == "equal"

    def test_pretty_marks_new_outcomes(self):
        comparison = self.run_pair("rc11")
        assert "<- NEW (positive difference)" in comparison.pretty()

    def test_mapping_projects_missing_to_zero(self):
        from repro.core.execution import Outcome

        mapping = StateMapping(observables=frozenset({"x", "P0:r0"}))
        applied = mapping.apply(Outcome.of({"x": 1, "junk": 9}))
        assert applied.as_dict() == {"x": 1, "P0:r0": 0}

    def test_renames_applied(self):
        from repro.core.execution import Outcome

        mapping = StateMapping(
            observables=frozenset({"out_P0_r0"}),
            renames=(("P0:r0", "out_P0_r0"),),
        )
        applied = mapping.apply(Outcome.of({"P0:r0": 3}))
        assert applied.as_dict() == {"out_P0_r0": 3}
